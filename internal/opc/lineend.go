package opc

import (
	"fmt"
	"math"

	"svtiming/internal/geom"
	"svtiming/internal/litho"
	"svtiming/internal/mask"
	"svtiming/internal/resist"
)

// LineEndConfig describes a 2-D line-end printing experiment: a vertical
// line of finite length imaged through the 2-D path, optionally with
// hammerhead end correction — the canonical 2-D OPC problem the 1-D flow
// cannot express.
type LineEndConfig struct {
	Imager litho.Imager2D
	Resist resist.Model
	Dose   float64

	Width  float64 // drawn linewidth, nm
	Length float64 // drawn line length, nm

	// Hammerhead correction: each line end is capped with a rectangle
	// HammerWidth wide (total) and HammerLength long. Zero disables it.
	HammerWidth  float64
	HammerLength float64

	Window float64 // simulation window edge, nm (default 2048)
	Grid   float64 // sampling, nm (default 8)
}

// DefaultLineEnd returns the standard experiment setup on the nominal
// optics: a 600 nm long line at the dose-to-size mask width (a 60 nm mask
// line prints near the 90 nm target on this process), ArF annular
// illumination.
func DefaultLineEnd() LineEndConfig {
	return LineEndConfig{
		Imager: litho.Imager2D{
			Wavelength: 193,
			NA:         0.7,
			Src:        litho.AnnularGrid(0.55, 0.85, 10),
		},
		Resist: resist.Model{Threshold: 0.55},
		Dose:   1.0,
		Width:  60,
		Length: 600,
		Window: 2048,
		Grid:   8,
	}
}

// LineEndResult reports the printed geometry of the experiment.
type LineEndResult struct {
	PrintedTop    float64 // y of the printed top end (drawn top at +Length/2)
	Pullback      float64 // drawn end − printed end, nm (positive = shortening)
	MidWidth      float64 // printed width at the line middle, nm
	PrintedLength float64 // printed end-to-end length, nm
}

// Run images the configured line and measures end pullback and mid-line
// width. The resist blur, if any, is applied along each 1-D cut — an
// approximation of the full 2-D diffusion that is accurate on the cut
// axes.
func (cfg LineEndConfig) Run() (LineEndResult, error) {
	if cfg.Window == 0 {
		cfg.Window = 2048
	}
	if cfg.Grid == 0 {
		cfg.Grid = 8
	}
	if cfg.Dose == 0 {
		cfg.Dose = 1
	}
	half := cfg.Window / 2
	window := geom.NewRect(-half, -half, half, half)
	rects := []geom.Rect{geom.NewRect(-cfg.Width/2, -cfg.Length/2, cfg.Width/2, cfg.Length/2)}
	if cfg.HammerWidth > cfg.Width && cfg.HammerLength > 0 {
		for _, top := range []float64{+1, -1} {
			yEnd := top * cfg.Length / 2
			rects = append(rects, geom.NewRect(
				-cfg.HammerWidth/2, yEnd-top*cfg.HammerLength,
				cfg.HammerWidth/2, yEnd,
			))
		}
	}
	m := mask.FromRects(rects, window, cfg.Grid, cfg.Grid)
	img := cfg.Imager.Image(m)

	var res LineEndResult
	// Mid-line width from the horizontal cut at y = 0.
	cutH := img.CutH(0)
	w, ok := cfg.Resist.PrintedCD(cutH, 0, cfg.Dose)
	if !ok {
		return res, fmt.Errorf("opc: line does not print at mid-length")
	}
	res.MidWidth = w

	// Printed length from the vertical cut along the line axis.
	cutV := img.CutV(0)
	l, ok := cfg.Resist.PrintedCD(cutV, 0, cfg.Dose)
	if !ok {
		return res, fmt.Errorf("opc: line vanished along its axis")
	}
	res.PrintedLength = l
	res.PrintedTop = l / 2 // symmetric structure, centered on y = 0
	res.Pullback = cfg.Length/2 - res.PrintedTop
	if math.IsNaN(res.Pullback) {
		return res, fmt.Errorf("opc: pullback measurement failed")
	}
	return res, nil
}
