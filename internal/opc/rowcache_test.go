package opc

import (
	stdctx "context"
	"math"
	"sync"
	"testing"

	"svtiming/internal/geom"
	"svtiming/internal/obs"
	"svtiming/internal/process"
)

func cacheTestRecipe() Recipe { return Standard(ModelProcess(process.Nominal90nm())) }

// cacheTestRow builds a small row whose geometry is shifted rigidly by
// shift nm — distinct shifts give distinct content keys.
func cacheTestRow(shift float64) []geom.PolyLine {
	span := geom.Interval{Lo: 0, Hi: 1000}
	return []geom.PolyLine{
		{CenterX: 100 + shift, Width: 100, Span: span},
		{CenterX: 350 + shift, Width: 100, Span: span},
		{CenterX: 720 + shift, Width: 100, Span: span},
	}
}

// A cache hit must hand back a solve bit-identical to the uncached path —
// warmth changes runtime, never results.
func TestRowCacheHitMatchesUncached(t *testing.T) {
	rec := cacheTestRecipe()
	lines := cacheTestRow(0)
	target := 100.0
	radius := rec.Model.RadiusOfInfluence

	want, err := solveRow(nil, rec, lines, target, radius)
	if err != nil {
		t.Fatalf("solveRow: %v", err)
	}

	reg := obs.New()
	c := NewRowCache(0)
	c.Observe(reg)
	first, err := c.Solve(nil, rec, lines, target, radius)
	if err != nil {
		t.Fatalf("Solve (cold): %v", err)
	}
	second, err := c.Solve(nil, rec, lines, target, radius)
	if err != nil {
		t.Fatalf("Solve (warm): %v", err)
	}
	if first != second {
		t.Fatalf("warm Solve returned a different *RowSolve: %p vs %p", first, second)
	}
	if len(first.Corrected) != len(want.Corrected) || len(first.Envs) != len(want.Envs) {
		t.Fatalf("cached solve shape differs from uncached")
	}
	for i := range want.Corrected {
		if math.Float64bits(first.Corrected[i].Width) != math.Float64bits(want.Corrected[i].Width) ||
			math.Float64bits(first.Corrected[i].CenterX) != math.Float64bits(want.Corrected[i].CenterX) {
			t.Fatalf("line %d: cached %+v, uncached %+v", i, first.Corrected[i], want.Corrected[i])
		}
		if first.EnvKeys[i] != want.EnvKeys[i] {
			t.Fatalf("line %d: env key %q vs %q", i, first.EnvKeys[i], want.EnvKeys[i])
		}
	}
	if got := reg.CounterValue("opc_row_lookups"); got != 2 {
		t.Fatalf("lookups = %d, want 2", got)
	}
	if got := reg.CounterValue("opc_row_solves"); got != 1 {
		t.Fatalf("solves = %d, want 1", got)
	}
	if got := reg.CounterValue("opc_row_hits"); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if c.Size() != 1 {
		t.Fatalf("Size = %d, want 1", c.Size())
	}
}

// Concurrent callers asking for one key must solve it exactly once; the
// rest hit or merge. Run with -race this also exercises the shard locking.
func TestRowCacheSingleflight(t *testing.T) {
	rec := cacheTestRecipe()
	lines := cacheTestRow(0)
	reg := obs.New()
	c := NewRowCache(0)
	c.Observe(reg)

	const workers = 16
	var wg sync.WaitGroup
	sols := make([]*RowSolve, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sol, err := c.Solve(nil, rec, lines, 100, rec.Model.RadiusOfInfluence)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			sols[w] = sol
		}(w)
	}
	wg.Wait()
	if got := reg.CounterValue("opc_row_solves"); got != 1 {
		t.Fatalf("solves = %d, want 1", got)
	}
	for w := 1; w < workers; w++ {
		if sols[w] != sols[0] {
			t.Fatalf("worker %d got a different solve pointer", w)
		}
	}
	hits := reg.CounterValue("opc_row_hits")
	merges := reg.CounterValue("opc_row_merges")
	if hits+merges != workers-1 {
		t.Fatalf("hits %d + merges %d != %d", hits, merges, workers-1)
	}
}

// A size-1 cache flooded with distinct rows must evict (pigeonhole over 32
// shards) and stay bounded at one entry per shard.
func TestRowCacheEviction(t *testing.T) {
	rec := cacheTestRecipe()
	reg := obs.New()
	c := NewRowCache(1)
	c.Observe(reg)
	const distinct = 100
	for i := 0; i < distinct; i++ {
		if _, err := c.Solve(nil, rec, cacheTestRow(float64(i)*3), 100, rec.Model.RadiusOfInfluence); err != nil {
			t.Fatalf("Solve %d: %v", i, err)
		}
	}
	if got := c.Size(); got > rowCacheShards {
		t.Fatalf("Size = %d, want <= %d", got, rowCacheShards)
	}
	if got := reg.CounterValue("opc_row_evictions"); got < distinct-rowCacheShards {
		t.Fatalf("evictions = %d, want >= %d", got, distinct-rowCacheShards)
	}
	c.Clear()
	if c.Size() != 0 {
		t.Fatalf("Size after Clear = %d", c.Size())
	}
}

// A nil *RowCache is the documented cache-off path: Solve computes, Size
// and Clear no-op.
func TestRowCacheNilReceiver(t *testing.T) {
	var c *RowCache
	rec := cacheTestRecipe()
	sol, err := c.Solve(nil, rec, cacheTestRow(0), 100, rec.Model.RadiusOfInfluence)
	if err != nil {
		t.Fatalf("nil Solve: %v", err)
	}
	if len(sol.Corrected) != 3 {
		t.Fatalf("nil Solve returned %d lines", len(sol.Corrected))
	}
	if c.Size() != 0 {
		t.Fatalf("nil Size = %d", c.Size())
	}
	c.Clear()
	c.Observe(obs.New())
}

// Cancellation is schedule, not content: a cancelled solve must error out
// without poisoning the key, and a later caller must solve successfully.
func TestRowCacheCancellationNotCached(t *testing.T) {
	rec := cacheTestRecipe()
	lines := cacheTestRow(0)
	reg := obs.New()
	c := NewRowCache(0)
	c.Observe(reg)

	ctx, cancel := stdctx.WithCancel(stdctx.Background())
	cancel()
	if _, err := c.Solve(ctx, rec, lines, 100, rec.Model.RadiusOfInfluence); err == nil {
		t.Fatalf("cancelled Solve succeeded")
	}
	if c.Size() != 0 {
		t.Fatalf("cancelled solve was cached: Size = %d", c.Size())
	}
	sol, err := c.Solve(stdctx.Background(), rec, lines, 100, rec.Model.RadiusOfInfluence)
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if len(sol.Corrected) != len(lines) {
		t.Fatalf("retry returned %d lines", len(sol.Corrected))
	}
	if got := reg.CounterValue("opc_row_solves"); got != 2 {
		t.Fatalf("solves = %d, want 2 (error not cached)", got)
	}
}

// Distinct content must never collide: a rigid shift of the same row is a
// different key even though relative spacings (and hence the physics) agree.
func TestRowCacheKeyIsExactBits(t *testing.T) {
	rec := cacheTestRecipe()
	a := rowKey(rec, cacheTestRow(0), 100, 400)
	b := rowKey(rec, cacheTestRow(0.0000001), 100, 400)
	if a == b {
		t.Fatalf("shifted row produced an identical key")
	}
	recB := rec
	recB.Gain += 1e-9
	if rowKey(recB, cacheTestRow(0), 100, 400) == a {
		t.Fatalf("recipe change produced an identical key")
	}
	if rowKey(rec, cacheTestRow(0), 101, 400) == a {
		t.Fatalf("target change produced an identical key")
	}
	if rowKey(rec, cacheTestRow(0), 100, 401) == a {
		t.Fatalf("radius change produced an identical key")
	}
}
