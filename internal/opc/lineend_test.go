package opc

import (
	"testing"
)

func TestLineEndShortening(t *testing.T) {
	r, err := DefaultLineEnd().Run()
	if err != nil {
		t.Fatal(err)
	}
	// Line ends pull back by tens of nm at dose-to-size — the classic 2-D
	// effect 1-D imaging cannot express.
	if r.Pullback < 15 {
		t.Errorf("pullback = %v nm, expected substantial shortening", r.Pullback)
	}
	if r.Pullback > 120 {
		t.Errorf("pullback = %v nm, implausibly large", r.Pullback)
	}
	if r.PrintedLength >= 600 {
		t.Errorf("printed length %v not below drawn 600", r.PrintedLength)
	}
	// Mid-line width near the 90 nm target at the dose-to-size mask width.
	if r.MidWidth < 70 || r.MidWidth > 110 {
		t.Errorf("mid width = %v, want near 90", r.MidWidth)
	}
}

func TestHammerheadReducesPullback(t *testing.T) {
	bare, err := DefaultLineEnd().Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultLineEnd()
	cfg.HammerWidth = 110
	cfg.HammerLength = 80
	capped, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if capped.Pullback >= bare.Pullback/2 {
		t.Errorf("hammerhead pullback %v not well below bare %v",
			capped.Pullback, bare.Pullback)
	}
	// The correction must not blow up the mid-line width.
	if capped.MidWidth > bare.MidWidth+15 {
		t.Errorf("hammerhead widened mid-line: %v vs %v", capped.MidWidth, bare.MidWidth)
	}
}

func TestWiderLinesPullBackLess(t *testing.T) {
	narrow := DefaultLineEnd()
	narrow.Width = 50
	wide := DefaultLineEnd()
	wide.Width = 70
	rn, err := narrow.Run()
	if err != nil {
		t.Fatal(err)
	}
	rw, err := wide.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rw.Pullback >= rn.Pullback {
		t.Errorf("wide line pullback %v not below narrow %v", rw.Pullback, rn.Pullback)
	}
}

func TestLineEndErrors(t *testing.T) {
	cfg := DefaultLineEnd()
	cfg.Width = 15 // sub-resolution: never prints
	if _, err := cfg.Run(); err == nil {
		t.Error("sub-resolution line accepted")
	}
}

func TestLineEndDefocusWorsensPullback(t *testing.T) {
	bare := DefaultLineEnd()
	r0, err := bare.Run()
	if err != nil {
		t.Fatal(err)
	}
	bare.Imager.Defocus = 200
	rz, err := bare.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rz.Pullback <= r0.Pullback {
		t.Errorf("defocus should worsen pullback: %v → %v", r0.Pullback, rz.Pullback)
	}
}
