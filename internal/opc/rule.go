package opc

import (
	"math"
	"sort"

	"svtiming/internal/geom"
	"svtiming/internal/process"
)

// RuleEntry maps a nearest-neighbor spacing to a mask bias.
type RuleEntry struct {
	Space float64 // edge-to-edge spacing, nm
	Bias  float64 // mask width − drawn width, nm
}

// RuleTable is a rule-based (table-driven) OPC recipe: each feature's mask
// width is biased according to the spacing to its nearest neighbor. This is
// the fast, single-pass correction mode; production flows use it as a seed
// for model-based OPC and for non-critical layers.
type RuleTable struct {
	DrawnCD float64
	Entries []RuleEntry // ascending space
}

// BiasFor returns the interpolated bias for a nearest-neighbor spacing.
func (rt RuleTable) BiasFor(space float64) float64 {
	if len(rt.Entries) == 0 {
		return 0
	}
	es := rt.Entries
	if !sort.SliceIsSorted(es, func(i, j int) bool { return es[i].Space < es[j].Space }) {
		es = append([]RuleEntry(nil), es...)
		sort.Slice(es, func(i, j int) bool { return es[i].Space < es[j].Space })
	}
	if space <= es[0].Space {
		return es[0].Bias
	}
	if space >= es[len(es)-1].Space {
		return es[len(es)-1].Bias
	}
	for i := 0; i+1 < len(es); i++ {
		a, b := es[i], es[i+1]
		if space >= a.Space && space <= b.Space {
			f := (space - a.Space) / (b.Space - a.Space)
			return a.Bias*(1-f) + b.Bias*f
		}
	}
	return es[len(es)-1].Bias
}

// Apply performs one-pass rule-based correction on a row of lines: each
// line's width is biased by the table entry for its minimum facing spacing.
// Isolated lines (no facing neighbor) use the largest-space entry. The
// input is not modified.
func (rt RuleTable) Apply(lines []geom.PolyLine) []geom.PolyLine {
	out := append([]geom.PolyLine(nil), lines...)
	sp := geom.Spacings(out, 1)
	for i := range out {
		s := sp[i].Min()
		if math.IsInf(s, 1) {
			s = 1e9
		}
		out[i].Width += rt.BiasFor(s)
		if out[i].Width < 1 {
			out[i].Width = 1
		}
	}
	return out
}

// SRAFConfig controls sub-resolution assist feature insertion. Assist bars
// make isolated features image like dense ones, flattening their Bossung
// curvature, but are themselves too narrow to print.
type SRAFConfig struct {
	Width      float64 // assist bar width, nm — below the printing threshold
	Offset     float64 // edge-to-edge distance from main feature to bar, nm
	MinLanding float64 // minimum free space required to host a bar, nm
}

// DefaultSRAF returns the assist-feature rules used in the extension
// experiments (scatter bars for a 90 nm ArF process).
func DefaultSRAF() SRAFConfig {
	return SRAFConfig{Width: 30, Offset: 150, MinLanding: 260}
}

// Insert places one assist bar on every side of every line whose facing
// free space is at least MinLanding + Width. The returned slice contains
// the original lines followed by the assist bars. Assist bars are marked by
// their width (below any printable feature) and should be excluded from CD
// measurement by callers.
func (c SRAFConfig) Insert(lines []geom.PolyLine) []geom.PolyLine {
	out := append([]geom.PolyLine(nil), lines...)
	sp := geom.Spacings(lines, 1)
	for i, l := range lines {
		if sp[i].Left >= c.MinLanding+c.Width {
			out = append(out, geom.PolyLine{
				CenterX: l.LeftEdge() - c.Offset - c.Width/2,
				Width:   c.Width,
				Span:    l.Span,
			})
		}
		if sp[i].Right >= c.MinLanding+c.Width {
			out = append(out, geom.PolyLine{
				CenterX: l.RightEdge() + c.Offset + c.Width/2,
				Width:   c.Width,
				Span:    l.Span,
			})
		}
	}
	geom.SortLinesByX(out)
	return out
}

// FocusSensitivity measures d(CD)/d(defocus²) for the given environment on
// a process, by sampling the printed CD at defocus 0 and z. Positive values
// smile, negative frown. Used to quantify how much SRAFs tame isolated
// lines.
func FocusSensitivity(p *process.Process, env process.Env, z float64) (float64, bool) {
	c0, ok0 := p.PrintCDCond(env, 0, p.Dose)
	cz, okz := p.PrintCDCond(env, z, p.Dose)
	if !ok0 || !okz {
		return 0, false
	}
	return (cz - c0) / (z * z), true
}
