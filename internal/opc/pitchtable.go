package opc

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"svtiming/internal/geom"
	"svtiming/internal/par"
	"svtiming/internal/process"
)

// PitchEntry is one row of a through-pitch characterization: test structures
// at the given pitch (equal-width parallel lines), corrected with the
// standard OPC flow, then measured on the wafer process.
type PitchEntry struct {
	Pitch     float64 // line pitch, nm
	Space     float64 // edge-to-edge spacing, nm (pitch − drawn width)
	MaskCD    float64 // post-OPC mask linewidth, nm
	PrintedCD float64 // wafer printed linewidth, nm
}

// PitchTable is the §3.1.1 lookup table matching pitch (equivalently,
// spacing to the nearest poly feature) to printed CD for a given process
// and OPC recipe. It is used for devices at cell boundaries, whose
// environment is not known at library-characterization time.
type PitchTable struct {
	DrawnCD float64
	Entries []PitchEntry // ascending pitch
}

// BuildPitchTable characterizes the through-pitch behavior: for each pitch
// it draws a parallel-line test layout at drawnCD, corrects it with the
// recipe, and measures the center line on the wafer process. An isolated
// entry (pitch = +Inf, represented by the wafer radius of influence plus
// drawn width) is appended last.
//
// The sweep is fanned out over the par worker pool: each pitch's
// draw/correct/measure chain is independent, so the ladder parallelizes
// perfectly while the index-ordered collection keeps the table rows in
// ascending-pitch order regardless of completion order. A nil ctx means
// context.Background; workers ≤ 0 uses GOMAXPROCS; cancellation via ctx
// returns the (possibly partial) table built so far with unvisited rows
// NaN.
func BuildPitchTable(ctx context.Context, wafer *process.Process, recipe Recipe, drawnCD float64, pitches []float64, workers int) PitchTable {
	if ctx == nil {
		ctx = context.Background()
	}
	t := PitchTable{DrawnCD: drawnCD}
	sorted := append([]float64(nil), pitches...)
	sort.Float64s(sorted)
	// The isolated reference rides along as one more sweep point (+Inf
	// pitch) so it shares the pool instead of running serially after.
	points := append(append([]float64(nil), sorted...), math.Inf(1))
	entries, _ := par.Sweep(ctx, workers, points,
		func(cctx context.Context, p float64) (PitchEntry, error) {
			if math.IsInf(p, 1) {
				return characterizeIsolated(cctx, wafer, recipe, drawnCD), nil
			}
			return characterizePitch(cctx, wafer, recipe, drawnCD, p), nil
		})
	if len(entries) == 0 {
		return t
	}
	t.Entries = entries[:len(entries)-1]
	// Isolated reference: a lone line. Its "pitch" is recorded as radius of
	// influence + drawn width so interpolation saturates smoothly.
	iso := entries[len(entries)-1]
	iso.Pitch = wafer.RadiusOfInfluence + drawnCD
	iso.Space = wafer.RadiusOfInfluence
	if len(t.Entries) == 0 || t.Entries[len(t.Entries)-1].Pitch < iso.Pitch {
		t.Entries = append(t.Entries, iso)
	}
	return t
}

func characterizePitch(ctx context.Context, wafer *process.Process, recipe Recipe, drawnCD, pitch float64) PitchEntry {
	env := process.DensePitch(drawnCD, pitch, 4)
	lines := env.Lines(spanUnit())
	corr, err := recipe.CorrectCtx(ctx, lines, drawnCD)
	if err != nil {
		// Cancelled mid-correction: an unvisited row, NaN by convention.
		return PitchEntry{Pitch: pitch, Space: pitch - drawnCD, MaskCD: math.NaN(), PrintedCD: math.NaN()}
	}
	cenv := process.EnvAt(corr, 0, wafer.RadiusOfInfluence)
	cd, ok := wafer.PrintCD(cenv)
	if !ok {
		cd = math.NaN()
	}
	return PitchEntry{Pitch: pitch, Space: pitch - drawnCD, MaskCD: corr[0].Width, PrintedCD: cd}
}

func characterizeIsolated(ctx context.Context, wafer *process.Process, recipe Recipe, drawnCD float64) PitchEntry {
	lines := process.Isolated(drawnCD).Lines(spanUnit())
	corr, err := recipe.CorrectCtx(ctx, lines, drawnCD)
	if err != nil {
		return PitchEntry{MaskCD: math.NaN(), PrintedCD: math.NaN()}
	}
	cd, ok := wafer.PrintCD(process.Env{Width: corr[0].Width})
	if !ok {
		cd = math.NaN()
	}
	return PitchEntry{MaskCD: corr[0].Width, PrintedCD: cd}
}

// Lookup returns the printed CD for a feature whose nearest-neighbor
// spacing is space nm, by linear interpolation over the table (clamped at
// the ends). Spacings at or beyond the radius of influence return the
// isolated value.
func (t PitchTable) Lookup(space float64) float64 {
	if len(t.Entries) == 0 {
		return math.NaN()
	}
	if space <= t.Entries[0].Space {
		return t.Entries[0].PrintedCD
	}
	last := t.Entries[len(t.Entries)-1]
	if space >= last.Space {
		return last.PrintedCD
	}
	for i := 0; i+1 < len(t.Entries); i++ {
		a, b := t.Entries[i], t.Entries[i+1]
		if space >= a.Space && space <= b.Space {
			f := (space - a.Space) / (b.Space - a.Space)
			return a.PrintedCD*(1-f) + b.PrintedCD*f
		}
	}
	return last.PrintedCD
}

// Span returns the total printed-CD range (max − min) across the table —
// the ±lvar_pitch magnitude of §3.3 is half of this.
func (t PitchTable) Span() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range t.Entries {
		if math.IsNaN(e.PrintedCD) {
			continue
		}
		lo = math.Min(lo, e.PrintedCD)
		hi = math.Max(hi, e.PrintedCD)
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// BiasTable converts the pitch table into a rule-based OPC bias table
// (space → mask bias).
func (t PitchTable) BiasTable() RuleTable {
	rt := RuleTable{DrawnCD: t.DrawnCD}
	for _, e := range t.Entries {
		rt.Entries = append(rt.Entries, RuleEntry{Space: e.Space, Bias: e.MaskCD - t.DrawnCD})
	}
	return rt
}

// String renders the table as aligned text, one row per pitch.
func (t PitchTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "through-pitch table, drawn CD %.0f nm\n", t.DrawnCD)
	fmt.Fprintf(&b, "%8s %8s %9s %10s\n", "pitch", "space", "maskCD", "printedCD")
	for _, e := range t.Entries {
		fmt.Fprintf(&b, "%8.0f %8.0f %9.1f %10.2f\n", e.Pitch, e.Space, e.MaskCD, e.PrintedCD)
	}
	return b.String()
}

// spanUnit is the canonical vertical span used for test structures.
func spanUnit() geom.Interval { return geom.Interval{Lo: 0, Hi: 1000} }
