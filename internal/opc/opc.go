// Package opc implements optical proximity correction: the mask data
// preparation step that pre-distorts drawn geometry so that it prints on
// target despite proximity effects.
//
// Two correction strategies are provided, mirroring production practice and
// the paper's discussion in §2 and §3.1:
//
//   - Model-based OPC: iterative per-feature edge bias driven by an OPC
//     *model* process. The model process is deliberately distinct from the
//     wafer process (the paper's "model fidelity" limitation), corrections
//     are snapped to the mask manufacturing grid and capped ("mask rule
//     constraints"), and the iteration count is small ("constraints on
//     runtime"). The residual printing error is therefore small but
//     *systematic in pitch* — exactly the effect the timing methodology
//     exploits.
//
//   - Rule-based OPC: a pre-characterized bias-vs-spacing table applied in
//     one pass, used both as a seed for model-based correction and as the
//     cheap correction mode for peripheral devices.
//
// The package also builds the through-pitch printed-CD lookup table of
// §3.1.1 and inserts sub-resolution assist features (§2, [11]).
package opc

import (
	stdctx "context"
	"fmt"
	"math"

	"svtiming/internal/fourier"
	"svtiming/internal/geom"
	"svtiming/internal/litho"
	"svtiming/internal/process"
)

// Recipe configures a model-based OPC run.
type Recipe struct {
	// Model is the process the OPC iteration optimizes against. It should
	// approximate — not equal — the wafer process; the gap between the two
	// is the model-fidelity error.
	Model *process.Process

	MaxIter       int     // correction iterations over the row
	Gain          float64 // fraction of the CD error fed back per iteration
	MaxCorrection float64 // cap on |mask width - drawn width|, nm
	MinWidth      float64 // mask rule: minimum feature width, nm
	MinSpace      float64 // mask rule: minimum space, nm
	Tolerance     float64 // stop once all features are within this of target, nm
}

// Standard returns the production-like recipe used for "standard OPC" in
// the experiments: few iterations, damped gain, grid-snapped and capped
// corrections. It converges near target but leaves a systematic
// through-pitch residual.
func Standard(model *process.Process) Recipe {
	return Recipe{
		Model:         model,
		MaxIter:       5,
		Gain:          0.8,
		MaxCorrection: 60,
		MinWidth:      40,
		MinSpace:      80,
		Tolerance:     1.0,
	}
}

// Ideal returns an aggressive recipe that iterates to convergence on the
// model process. Used for ablation: even a perfectly converged OPC retains
// the model-fidelity residual on the wafer process.
func Ideal(model *process.Process) Recipe {
	return Recipe{
		Model:         model,
		MaxIter:       12,
		Gain:          0.9,
		MaxCorrection: 80,
		MinWidth:      30,
		MinSpace:      60,
		Tolerance:     0.1,
	}
}

// ModelProcess derives the OPC model process from a wafer process. The
// model shares the target and measurement conventions but approximates the
// optics and resist: a slightly mis-sized annular fill (as a model
// calibrated on limited test data would have) and no acid diffusion. The
// gap between model and wafer is the controlled stand-in for
// calibrated-model error in production OPC.
func ModelProcess(wafer *process.Process) *process.Process {
	m := &process.Process{
		Optics:            wafer.Optics,
		Resist:            wafer.Resist,
		Dose:              wafer.Dose,
		TargetCD:          wafer.TargetCD,
		RadiusOfInfluence: wafer.RadiusOfInfluence,
		MaskGrid:          wafer.MaskGrid,
		Dx:                wafer.Dx,
		GuardBand:         wafer.GuardBand,
	}
	m.Optics.Src = litho.Annular(0.55, 0.85, 16)
	// Dose-calibration error: the model believes the resist trips slightly
	// high. Because isolated edges have a lower image log-slope than dense
	// ones, a threshold error displaces isolated CDs more than dense CDs —
	// the monotonic iso-dense residual of the paper's §2.
	m.Resist.Threshold = wafer.Resist.Threshold + 0.025
	return m
}

// Correct runs model-based OPC on a row of poly lines (all spans assumed
// facing). Each line's mask width is iteratively biased (symmetrically, so
// centerlines are preserved) until it prints at target on the model
// process, subject to the recipe's mask rules. The input is not modified;
// the corrected row is returned.
func (r Recipe) Correct(lines []geom.PolyLine, target float64) []geom.PolyLine {
	// A nil context never cancels, so the error return is structurally
	// impossible here.
	out, _ := r.CorrectCtx(nil, lines, target)
	return out
}

// CorrectCtx is Correct with cooperative cancellation: the iteration
// re-checks ctx between sweeps over the row, so a cancelled full-chip run
// or an expired edit-session deadline aborts mid-correction instead of
// finishing MaxIter sweeps of dead work. nil ctx means never cancelled.
// The correction itself is a pure function of (recipe, lines, target):
// cancellation changes when work stops, never what it computes.
func (r Recipe) CorrectCtx(ctx stdctx.Context, lines []geom.PolyLine, target float64) ([]geom.PolyLine, error) {
	if r.Model == nil {
		panic("opc: recipe has no model process")
	}
	if ctx == nil {
		ctx = stdctx.Background()
	}
	out := append([]geom.PolyLine(nil), lines...)
	if len(out) == 0 {
		return out, nil
	}
	// Per-line secant state: the previous (width, printed CD) pair, used to
	// estimate the local print slope d(CD)/d(width).
	type hist struct {
		w, cd float64
		valid bool
	}
	prev := make([]hist, len(out))
	// Per-sweep scratch, hoisted out of the iteration: the widths buffer
	// comes from the fourier float pool (zeroed on acquire, overwritten in
	// full each sweep), the environment buffers and the space-rule index
	// scratch are reused across all sweeps. Before this hoist the sweep
	// loop was the dominant allocation site of the cold full-chip rebuild.
	wbuf := fourier.AcquireFloat(len(out))
	defer fourier.ReleaseFloat(wbuf)
	widths := *wbuf
	var envScratch process.EnvScratch
	spaceIdx := make([]int, len(out))
	const defaultSlope = 1.5 // typical d(printCD)/d(maskWidth) for this process
	for iter := 0; iter < r.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("opc: correction cancelled at iteration %d: %w", iter, err)
		}
		worst := 0.0
		for i := range out {
			env := process.EnvAtInto(&envScratch, out, i, r.Model.RadiusOfInfluence)
			cd, ok := r.Model.PrintCD(env)
			if !ok {
				// Feature lost on the model process: grow it.
				widths[i] = r.clampWidth(out[i].Width+8, lines[i].Width)
				prev[i].valid = false
				worst = math.Inf(1)
				continue
			}
			slope := defaultSlope
			if prev[i].valid && math.Abs(out[i].Width-prev[i].w) > 0.25 {
				s := (cd - prev[i].cd) / (out[i].Width - prev[i].w)
				if s > 0.3 && s < 4 {
					slope = s
				}
			}
			err := target - cd
			if math.Abs(err) > worst {
				worst = math.Abs(err)
			}
			step := r.Gain * err / slope
			widths[i] = r.clampWidth(out[i].Width+step, lines[i].Width)
			prev[i] = hist{w: out[i].Width, cd: cd, valid: true}
		}
		// Jacobi update: apply all width changes at once, then repair any
		// space violations pairwise.
		for i := range out {
			out[i].Width = widths[i]
		}
		r.enforceSpaces(out, spaceIdx)
		if worst <= r.Tolerance {
			break
		}
	}
	// Final mask-grid snap.
	for i := range out {
		out[i].Width = math.Max(r.MinWidth, r.Model.SnapToGrid(out[i].Width))
	}
	r.enforceSpaces(out, spaceIdx)
	return out, nil
}

// clampWidth applies the width mask rules relative to the drawn width.
func (r Recipe) clampWidth(w, drawn float64) float64 {
	if w < r.MinWidth {
		w = r.MinWidth
	}
	if w > drawn+r.MaxCorrection {
		w = drawn + r.MaxCorrection
	}
	if w < drawn-r.MaxCorrection {
		w = drawn - r.MaxCorrection
	}
	return w
}

// enforceSpaces shrinks adjacent features that violate the minimum space
// rule, splitting the encroachment evenly. idx is caller-owned scratch of
// length len(lines) (its contents are overwritten).
func (r Recipe) enforceSpaces(lines []geom.PolyLine, idx []int) {
	idx = idx[:len(lines)]
	for i := range idx {
		idx[i] = i
	}
	// Sort indices by x.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && lines[idx[j]].CenterX < lines[idx[j-1]].CenterX; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	for k := 0; k+1 < len(idx); k++ {
		a, b := idx[k], idx[k+1]
		if lines[a].Span.Intersect(lines[b].Span).Empty() {
			continue
		}
		gap := lines[b].LeftEdge() - lines[a].RightEdge()
		if gap >= r.MinSpace {
			continue
		}
		need := r.MinSpace - gap
		lines[a].Width = math.Max(r.MinWidth, lines[a].Width-need/2)
		lines[b].Width = math.Max(r.MinWidth, lines[b].Width-need/2)
	}
}

// Bias returns the OPC bias (mask width − drawn width) per line between a
// drawn row and its corrected counterpart.
func Bias(drawn, corrected []geom.PolyLine) []float64 {
	if len(drawn) != len(corrected) {
		panic(fmt.Sprintf("opc: Bias length mismatch %d vs %d", len(drawn), len(corrected)))
	}
	out := make([]float64, len(drawn))
	for i := range drawn {
		out[i] = corrected[i].Width - drawn[i].Width
	}
	return out
}
