package opc

import (
	"context"
	"fmt"

	"svtiming/internal/par"
	"svtiming/internal/process"
)

// MEEFPoint is one sample of the mask error enhancement factor curve.
type MEEFPoint struct {
	Pitch float64 // nm; +Inf recorded as the isolated entry's saturation
	MEEF  float64 // d(printed CD) / d(mask CD)
}

// MEEF measures the mask error enhancement factor — the amplification of
// a mask CD error into printed CD error — for a line array at the given
// pitch, by central difference around the mask width w. MEEF grows as
// pitch approaches the resolution limit; it is the reason mask-grid
// quantization leaves a visible printed-CD residual after OPC.
func MEEF(p *process.Process, w, pitch, delta float64) (float64, error) {
	if delta <= 0 {
		delta = 2
	}
	mk := func(width float64) process.Env {
		if pitch <= 0 {
			return process.Isolated(width)
		}
		return process.DensePitch(width, pitch, 4)
	}
	hi, okH := p.PrintCD(mk(w + delta))
	lo, okL := p.PrintCD(mk(w - delta))
	if !okH || !okL {
		return 0, fmt.Errorf("opc: MEEF pattern w=%v pitch=%v does not print", w, pitch)
	}
	return (hi - lo) / (2 * delta), nil
}

// MEEFCurve sweeps MEEF over a pitch ladder at the given mask width; a
// final isolated point is appended with Pitch = 0. The sweep fans out
// over the par worker pool (workers ≤ 0 uses GOMAXPROCS, 1 is serial).
func MEEFCurve(p *process.Process, w float64, pitches []float64, workers int) ([]MEEFPoint, error) {
	points := append(append([]float64{}, pitches...), 0) // 0 = isolated
	return par.Sweep(nil, workers, points,
		func(_ context.Context, pitch float64) (MEEFPoint, error) {
			m, err := MEEF(p, w, pitch, 2)
			if err != nil {
				return MEEFPoint{}, err
			}
			return MEEFPoint{Pitch: pitch, MEEF: m}, nil
		})
}
