package opc

import (
	"math"
	"testing"

	"svtiming/internal/geom"
	"svtiming/internal/process"
)

// BiasFor edge cases, table-driven: empty table, exact knots, clamping
// beyond both ends, midpoint interpolation, and a single-entry table
// (every spacing clamps to the one knot).
func TestRuleTableBiasForEdgeCases(t *testing.T) {
	base := RuleTable{DrawnCD: 100, Entries: []RuleEntry{
		{Space: 100, Bias: 10},
		{Space: 200, Bias: 4},
		{Space: 400, Bias: -2},
	}}
	single := RuleTable{DrawnCD: 100, Entries: []RuleEntry{{Space: 250, Bias: 7}}}
	empty := RuleTable{DrawnCD: 100}

	cases := []struct {
		name  string
		table RuleTable
		space float64
		want  float64
	}{
		{"empty table", empty, 150, 0},
		{"below first knot clamps", base, 10, 10},
		{"at first knot", base, 100, 10},
		{"midpoint interpolates", base, 150, 7},
		{"at middle knot", base, 200, 4},
		{"second segment interpolates", base, 300, 1},
		{"at last knot", base, 400, -2},
		{"beyond last knot clamps", base, 1e9, -2},
		{"single entry below", single, 0, 7},
		{"single entry above", single, 1e6, 7},
	}
	for _, tc := range cases {
		if got := tc.table.BiasFor(tc.space); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: BiasFor(%v) = %v, want %v", tc.name, tc.space, got, tc.want)
		}
	}
}

// An unsorted table must behave exactly like its sorted counterpart and
// must not be reordered in place (BiasFor sorts a copy).
func TestRuleTableBiasForUnsortedNotMutated(t *testing.T) {
	unsorted := RuleTable{Entries: []RuleEntry{
		{Space: 400, Bias: -2},
		{Space: 100, Bias: 10},
		{Space: 200, Bias: 4},
	}}
	if got := unsorted.BiasFor(150); math.Abs(got-7) > 1e-12 {
		t.Errorf("unsorted BiasFor(150) = %v, want 7", got)
	}
	if unsorted.Entries[0].Space != 400 {
		t.Errorf("BiasFor reordered the caller's entries: %+v", unsorted.Entries)
	}
}

// Apply edge cases: an isolated line (no facing neighbor anywhere) takes
// the largest-space entry, and a bias that would drive the width negative
// floors at the 1 nm minimum. The input row must not be modified.
func TestRuleTableApplyEdgeCases(t *testing.T) {
	rt := RuleTable{DrawnCD: 100, Entries: []RuleEntry{
		{Space: 100, Bias: 20},
		{Space: 500, Bias: -3},
	}}
	span := geom.Interval{Lo: 0, Hi: 1000}
	iso := []geom.PolyLine{{CenterX: 0, Width: 100, Span: span}}
	out := rt.Apply(iso)
	if got := out[0].Width; math.Abs(got-97) > 1e-12 {
		t.Errorf("isolated line width = %v, want 97 (largest-space bias)", got)
	}
	if iso[0].Width != 100 {
		t.Errorf("Apply mutated its input: %+v", iso[0])
	}

	crush := RuleTable{DrawnCD: 5, Entries: []RuleEntry{{Space: 100, Bias: -50}}}
	thin := []geom.PolyLine{
		{CenterX: 0, Width: 5, Span: span},
		{CenterX: 105, Width: 5, Span: span},
	}
	for i, l := range crush.Apply(thin) {
		if l.Width != 1 {
			t.Errorf("line %d: width %v, want the 1 nm floor", i, l.Width)
		}
	}
}

// Insert landing rule, table-driven around the MinLanding+Width boundary:
// a bar lands only where the facing free space is at least
// MinLanding+Width, on each side independently.
func TestSRAFInsertLandingBoundary(t *testing.T) {
	c := SRAFConfig{Width: 30, Offset: 150, MinLanding: 260}
	span := geom.Interval{Lo: 0, Hi: 1000}
	need := c.MinLanding + c.Width // 290
	pair := func(space float64) []geom.PolyLine {
		return []geom.PolyLine{
			{CenterX: 0, Width: 100, Span: span},
			{CenterX: 100 + space, Width: 100, Span: span},
		}
	}
	cases := []struct {
		name  string
		space float64
		bars  int // expected assist bars (outer sides are always isolated: 2)
	}{
		{"inner gap below landing", need - 1, 2},
		{"inner gap exactly at landing", need, 4},
		{"inner gap above landing", need + 100, 4},
	}
	for _, tc := range cases {
		out := c.Insert(pair(tc.space))
		bars := 0
		for _, l := range out {
			if l.Width == c.Width {
				bars++
			}
		}
		if bars != tc.bars {
			t.Errorf("%s: %d assist bars, want %d", tc.name, bars, tc.bars)
		}
		for i := 1; i < len(out); i++ {
			if out[i].CenterX < out[i-1].CenterX {
				t.Errorf("%s: Insert output not sorted at %d", tc.name, i)
			}
		}
	}
}

// A non-printing environment must report (0, false) from FocusSensitivity
// rather than a fabricated slope — at either sample point.
func TestFocusSensitivityNonPrinting(t *testing.T) {
	p := process.Nominal90nm()
	// A 1 nm line is far below the printing threshold at focus.
	if s, ok := FocusSensitivity(p, process.Env{Width: 1}, 100); ok {
		t.Errorf("non-printing env returned sensitivity %v, ok=true", s)
	}
	// Sanity: a printable isolated line does report a finite slope.
	s, ok := FocusSensitivity(p, process.Env{Width: 120}, 100)
	if !ok || math.IsNaN(s) || math.IsInf(s, 0) {
		t.Errorf("printable env: sensitivity %v ok=%v", s, ok)
	}
}

// Run's default-filling: a config with zero Window/Grid/Dose must produce
// the same printed geometry as one with the defaults spelled out.
func TestLineEndRunDefaultsMatchExplicit(t *testing.T) {
	implicit := DefaultLineEnd()
	implicit.Window, implicit.Grid, implicit.Dose = 0, 0, 0
	explicit := DefaultLineEnd()

	ri, err := implicit.Run()
	if err != nil {
		t.Fatalf("implicit defaults: %v", err)
	}
	re, err := explicit.Run()
	if err != nil {
		t.Fatalf("explicit defaults: %v", err)
	}
	if math.Float64bits(ri.MidWidth) != math.Float64bits(re.MidWidth) ||
		math.Float64bits(ri.Pullback) != math.Float64bits(re.Pullback) {
		t.Errorf("defaults diverge: implicit %+v, explicit %+v", ri, re)
	}
}

// Hammerhead gating, table-driven: a cap no wider than the line, or with
// no length, must be ignored (identical result to no hammerhead), while a
// real cap changes the printed end.
func TestLineEndHammerheadGating(t *testing.T) {
	base := DefaultLineEnd()
	plain, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name           string
		hw, hl         float64
		expectDistinct bool
	}{
		{"no hammerhead", 0, 0, false},
		{"cap narrower than line", base.Width - 10, 60, false},
		{"cap exactly line width", base.Width, 60, false},
		{"cap with zero length", base.Width + 40, 0, false},
		{"real cap", base.Width + 40, 60, true},
	}
	for _, tc := range cases {
		cfg := base
		cfg.HammerWidth, cfg.HammerLength = tc.hw, tc.hl
		got, err := cfg.Run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		same := math.Float64bits(got.Pullback) == math.Float64bits(plain.Pullback)
		if tc.expectDistinct && same {
			t.Errorf("%s: hammerhead had no effect (pullback %v)", tc.name, got.Pullback)
		}
		if !tc.expectDistinct && !same {
			t.Errorf("%s: inert hammerhead changed pullback %v -> %v", tc.name, plain.Pullback, got.Pullback)
		}
	}
}

// The mid-length error path: a threshold no aerial image reaches makes
// the line non-printing, and Run must say so rather than return zeros.
func TestLineEndRunNonPrinting(t *testing.T) {
	cfg := DefaultLineEnd()
	cfg.Resist.Threshold = 1e9
	if _, err := cfg.Run(); err == nil {
		t.Fatal("non-printing line returned no error")
	}
}
