package opc

import (
	stdctx "context"
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"math"
	"sync"

	"svtiming/internal/geom"
	"svtiming/internal/obs"
	"svtiming/internal/process"
)

// RowSolve is one cached row-solve result: the OPC-corrected mask for a
// sorted row of drawn lines, plus the post-correction optical environment
// (and its quantized cache key) for every line in the row.
//
// Environments are carried for all line indices — not just gate lines —
// because which lines are gates depends on the cell sequence, while the
// cache key depends only on geometry: two designs can share a row's drawn
// bits yet disagree about which lines matter. Callers join gates to
// environments by line index (see place.RowGeom.LineIdx).
//
// A RowSolve is shared between every cache reader and must be treated as
// immutable.
type RowSolve struct {
	Corrected []geom.PolyLine
	Envs      []process.Env
	EnvKeys   []string
}

// DefaultRowCacheSize bounds the cache when no explicit size is given:
// large enough to hold every distinct row of the Table 1/Table 2 designs
// simultaneously, small enough that a resident svtimingd stays O(10 MB).
const DefaultRowCacheSize = 4096

// rowCacheShards must be a power of two for the mask in shardIndex.
const rowCacheShards = 32

// RowCache is the content-addressed, sharded, singleflight row-solve cache
// behind the cold full-chip OPC path (the tentpole of ISSUE 10). It is the
// structural sibling of the CD cache in internal/process/cache.go with two
// deliberate differences:
//
//   - Keys are exact IEEE-754 bits of the drawn row geometry joined with
//     the recipe's scalar knobs, the target CD and the environment radius —
//     no quantization. The row solve is a pure function of those inputs
//     (the purity argument pinned by internal/incr's differential harness),
//     so bit-exact keys give bit-exact reuse: cache warmth can change
//     runtime but never results. The model process pointer is excluded
//     from the key on purpose: a RowCache is owned by one Flow, whose
//     recipe/model pair is fixed at construction, so recipe scalars
//     identify the recipe within any one cache's lifetime.
//
//   - Errors are never cached. CorrectCtx's only error is cooperative
//     cancellation, which is a property of the calling schedule, not of
//     the key; caching it would poison a row for innocent later callers.
//     A merged waiter whose leader errored retries under its own context.
//
// Each shard evicts FIFO beyond its share of the configured size; eviction
// only costs a re-solve, never correctness. The zero value is NOT ready —
// use NewRowCache — but a nil *RowCache is: every method degrades to the
// uncached path, which is how `-row-cache -1` disables caching without
// branching at call sites.
type RowCache struct {
	seed     maphash.Seed
	seedOnce sync.Once
	perShard int
	shards   [rowCacheShards]rowShard

	// Telemetry handles, nil (no-op) unless Observe wired a registry.
	// lookups and solves are schedule-invariant for a given workload; the
	// hit/merge split and eviction timing depend on worker scheduling, so
	// manifests derive hits as lookups−solves and only the raw metrics
	// dump exposes the split (same contract as the CD cache).
	lookups   *obs.Counter
	hits      *obs.Counter
	solves    *obs.Counter
	merges    *obs.Counter
	evictions *obs.Counter
	entries   *obs.Gauge
}

type rowShard struct {
	mu       sync.Mutex
	done     map[string]*RowSolve
	order    []string // FIFO eviction order; bounded by perShard+1
	inflight map[string]*rowCall
}

// rowCall is one in-flight row solve; waiters block on wg.
type rowCall struct {
	wg  sync.WaitGroup
	sol *RowSolve
	err error
}

// NewRowCache returns a RowCache bounded to roughly size completed entries
// (split evenly across shards). size <= 0 selects DefaultRowCacheSize.
func NewRowCache(size int) *RowCache {
	if size <= 0 {
		size = DefaultRowCacheSize
	}
	return &RowCache{perShard: (size + rowCacheShards - 1) / rowCacheShards}
}

// Observe wires the cache's telemetry to a registry under the opc_row_*
// metric names consumed by the run manifest.
func (c *RowCache) Observe(reg *obs.Registry) {
	if c == nil || !reg.Enabled() {
		return
	}
	c.lookups = reg.Counter("opc_row_lookups")
	c.hits = reg.Counter("opc_row_hits")
	c.solves = reg.Counter("opc_row_solves")
	c.merges = reg.Counter("opc_row_merges")
	c.evictions = reg.Counter("opc_row_evictions")
	c.entries = reg.Gauge("opc_row_entries")
}

func (c *RowCache) shardIndex(key string) int {
	c.seedOnce.Do(func() { c.seed = maphash.MakeSeed() })
	return int(maphash.String(c.seed, key) & (rowCacheShards - 1))
}

// rowKey content-addresses one row solve: the exact bits of every drawn
// line (center, width, vertical span) plus the recipe scalars, target CD
// and environment radius. Two calls collide iff every solve input is
// bit-identical, in which case the solve outputs are too.
func rowKey(r Recipe, lines []geom.PolyLine, target, radius float64) string {
	b := make([]byte, 0, 64+32*len(lines))
	ap := func(v float64) {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(r.MaxIter)))
	ap(r.Gain)
	ap(r.MaxCorrection)
	ap(r.MinWidth)
	ap(r.MinSpace)
	ap(r.Tolerance)
	ap(target)
	ap(radius)
	for _, l := range lines {
		ap(l.CenterX)
		ap(l.Width)
		ap(l.Span.Lo)
		ap(l.Span.Hi)
	}
	return string(b)
}

// solveRow is the uncached row solve: OPC-correct the row, then extract
// the post-correction environment of every line. Pure in its arguments.
func solveRow(ctx stdctx.Context, rec Recipe, lines []geom.PolyLine, target, radius float64) (*RowSolve, error) {
	corrected, err := rec.CorrectCtx(ctx, lines, target)
	if err != nil {
		return nil, err
	}
	sol := &RowSolve{
		Corrected: corrected,
		Envs:      make([]process.Env, len(corrected)),
		EnvKeys:   make([]string, len(corrected)),
	}
	for i := range corrected {
		sol.Envs[i] = process.EnvAt(corrected, i, radius)
		sol.EnvKeys[i] = sol.Envs[i].Key()
	}
	return sol, nil
}

// Solve returns the cached solve for the row, or runs it (at most once per
// key across all concurrent callers) and caches it. A nil receiver solves
// directly with no caching. Cancellation errors are returned to the caller
// but never cached; merged waiters whose leader was cancelled retry under
// their own context.
func (c *RowCache) Solve(ctx stdctx.Context, rec Recipe, lines []geom.PolyLine, target, radius float64) (*RowSolve, error) {
	if c == nil {
		return solveRow(ctx, rec, lines, target, radius)
	}
	key := rowKey(rec, lines, target, radius)
	s := &c.shards[c.shardIndex(key)]
	c.lookups.Inc()
	for {
		s.mu.Lock()
		if sol, ok := s.done[key]; ok {
			s.mu.Unlock()
			c.hits.Inc()
			return sol, nil
		}
		if call, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			c.merges.Inc()
			call.wg.Wait()
			if call.err == nil {
				return call.sol, nil
			}
			// The leader was cancelled. Its error reflects its schedule,
			// not ours: give up only if our own context is also done,
			// otherwise take another lap and solve (or merge) again.
			if ctx != nil && ctx.Err() != nil {
				return nil, fmt.Errorf("opc: row solve cancelled: %w", ctx.Err())
			}
			continue
		}
		call := &rowCall{}
		call.wg.Add(1)
		if s.inflight == nil {
			s.inflight = make(map[string]*rowCall)
		}
		s.inflight[key] = call
		s.mu.Unlock()

		c.solves.Inc()
		sol, err := solveRow(ctx, rec, lines, target, radius)
		call.sol, call.err = sol, err

		s.mu.Lock()
		delete(s.inflight, key)
		if err == nil {
			if s.done == nil {
				s.done = make(map[string]*RowSolve)
			}
			s.done[key] = sol
			s.order = append(s.order, key)
			for len(s.order) > c.perShard {
				delete(s.done, s.order[0])
				s.order = s.order[1:]
				c.evictions.Inc()
			}
		}
		s.mu.Unlock()
		call.wg.Done()
		if err != nil {
			return nil, err
		}
		if c.entries != nil {
			// Gauge refresh walks every shard; skip it entirely when
			// unobserved (the only non-handle cost of instrumentation).
			c.entries.Set(int64(c.Size()))
		}
		return sol, nil
	}
}

// Size returns the number of completed entries across all shards. Nil-safe.
func (c *RowCache) Size() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.done)
		s.mu.Unlock()
	}
	return n
}

// Clear discards all completed entries. In-flight solves finish and publish
// into the cleared cache; callers that need a strictly cold cache must
// quiesce concurrent lookups first (as the benchmarks do). Nil-safe.
func (c *RowCache) Clear() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.done = nil
		s.order = nil
		s.mu.Unlock()
	}
}
