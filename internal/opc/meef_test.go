package opc

import (
	"math"
	"testing"

	"svtiming/internal/process"
)

func TestMEEFPositiveAndAboveOne(t *testing.T) {
	// In the subwavelength regime the printed CD error exceeds the mask
	// CD error: MEEF > 1 for dense patterns near the resolution limit.
	m, err := MEEF(testWafer, 90, 240, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m <= 1 {
		t.Errorf("dense MEEF = %v, want > 1 at 240 nm pitch", m)
	}
	if m > 6 {
		t.Errorf("dense MEEF = %v, implausibly large", m)
	}
}

func TestMEEFCurveShape(t *testing.T) {
	pts, err := MEEFCurve(testWafer, 90, []float64{240, 300, 450, 690}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	// Tightest pitch amplifies most.
	if pts[0].MEEF <= pts[3].MEEF {
		t.Errorf("MEEF at pitch 240 (%v) not above pitch 690 (%v)",
			pts[0].MEEF, pts[3].MEEF)
	}
	// The isolated entry (Pitch 0 marker) is finite and positive.
	iso := pts[len(pts)-1]
	if iso.Pitch != 0 || iso.MEEF <= 0 || math.IsNaN(iso.MEEF) {
		t.Errorf("isolated MEEF entry = %+v", iso)
	}
}

func TestMEEFDefaultDelta(t *testing.T) {
	a, err := MEEF(testWafer, 90, 300, 0) // delta defaults to 2
	if err != nil {
		t.Fatal(err)
	}
	b, err := MEEF(testWafer, 90, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("default delta mismatch: %v vs %v", a, b)
	}
}

func TestMEEFErrorsOnNonPrinting(t *testing.T) {
	if _, err := MEEF(testWafer, 20, 0, 2); err == nil {
		t.Error("sub-resolution feature accepted")
	}
}

func TestMEEFExplainsGridResidual(t *testing.T) {
	// The printed-CD quantization left by mask-grid snapping is the mask
	// grid times MEEF; verify the relationship holds to first order.
	m, err := MEEF(testWafer, 52, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	cd1, ok1 := testWafer.PrintCD(process.DensePitch(52, 300, 4))
	cd2, ok2 := testWafer.PrintCD(process.DensePitch(53, 300, 4))
	if !ok1 || !ok2 {
		t.Fatal("patterns do not print")
	}
	got := cd2 - cd1
	if math.Abs(got-m) > 0.5*math.Abs(m) {
		t.Errorf("1 nm mask step printed %v nm, MEEF predicts %v", got, m)
	}
}
