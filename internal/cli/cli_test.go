package cli

import (
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"svtiming/internal/core"
	"svtiming/internal/fault"
)

func flagNames(fs *flag.FlagSet) map[string]bool {
	names := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { names[f.Name] = true })
	return names
}

func TestRegisterFlagSets(t *testing.T) {
	always := []string{"j", "timeout", "metrics", "pprof"}

	base := flag.NewFlagSet("base", flag.ContinueOnError)
	Register(base, 0)
	names := flagNames(base)
	for _, n := range always {
		if !names[n] {
			t.Errorf("base set missing always-present flag -%s", n)
		}
	}
	service := []string{"max-inflight", "max-queue", "queue-wait", "request-timeout", "drain-timeout", "max-sessions"}
	for _, n := range append([]string{"engine", "kernel-budget", "row-cache", "on-fault"}, service...) {
		if names[n] {
			t.Errorf("base set registered optional flag -%s", n)
		}
	}

	full := flag.NewFlagSet("full", flag.ContinueOnError)
	Register(full, Engine|OnFault)
	names = flagNames(full)
	for _, n := range append(always, "engine", "kernel-budget", "row-cache", "on-fault") {
		if !names[n] {
			t.Errorf("full set missing flag -%s", n)
		}
	}
	for _, n := range service {
		if names[n] {
			t.Errorf("Engine|OnFault set registered service flag -%s", n)
		}
	}

	resident := flag.NewFlagSet("resident", flag.ContinueOnError)
	Register(resident, Engine|OnFault|Service)
	names = flagNames(resident)
	for _, n := range append(append(append([]string{}, always...), "engine", "kernel-budget", "row-cache", "on-fault"), service...) {
		if !names[n] {
			t.Errorf("resident set missing flag -%s", n)
		}
	}
}

func TestResolve(t *testing.T) {
	c := &Common{EngineName: "socs", OnFaultName: "collect"}
	if err := c.Resolve(); err != nil {
		t.Fatal(err)
	}
	if c.Policy != core.CollectAndReport {
		t.Errorf("policy: got %v", c.Policy)
	}

	// Unregistered optional groups leave empty strings, which must
	// resolve to the defaults rather than erroring (opcrun and lithosim
	// never register -on-fault).
	if err := (&Common{}).Resolve(); err != nil {
		t.Fatalf("zero Common failed to resolve: %v", err)
	}

	if err := (&Common{EngineName: "magic"}).Resolve(); err == nil {
		t.Error("bad engine accepted")
	}
	if err := (&Common{OnFaultName: "retry"}).Resolve(); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestRequestCarriesFlagValues(t *testing.T) {
	c := &Common{EngineName: "abbe", KernelBudget: 1e-6, OnFaultName: "collect"}
	req := c.Request([]string{"c17", "c432"})
	if err := req.Validate(); err != nil {
		t.Fatalf("flag-built request invalid: %v", err)
	}
	if req.Engine != "abbe" || req.KernelBudget != 1e-6 || req.OnFault != "collect" {
		t.Errorf("request lost flag values: %+v", req)
	}
	if len(req.Benchmarks) != 2 || req.Benchmarks[0] != "c17" {
		t.Errorf("request benchmarks: %v", req.Benchmarks)
	}
}

func TestBenchmarks(t *testing.T) {
	names, err := Benchmarks(" c17 ,c432")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "c17" || names[1] != "c432" {
		t.Errorf("got %v", names)
	}

	_, err = Benchmarks("c17,c999")
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if !strings.Contains(err.Error(), "c999") || !strings.Contains(err.Error(), "c17") {
		t.Errorf("error should name the offender and list known names: %v", err)
	}
}

func TestExitCode(t *testing.T) {
	clean := &core.RunResult{Rows: []core.Comparison{{Name: "c17"}}}
	degraded := &core.RunResult{Rows: []core.Comparison{{Name: "c17", Degraded: true}}}
	degraded.Report.Add(fault.Coord{Stage: "table2", Index: 0, Item: "c17"},
		errors.New("injected"))

	cases := []struct {
		name string
		res  *core.RunResult
		err  error
		want int
	}{
		{"clean", clean, nil, fault.ExitClean},
		{"nil result", nil, nil, fault.ExitClean},
		{"degraded", degraded, nil, fault.ExitDegraded},
		{"error", nil, errors.New("boom"), fault.ExitFailed},
		{"error wins over degraded", degraded, errors.New("boom"), fault.ExitFailed},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.res, tc.err); got != tc.want {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestContextHonoursTimeout(t *testing.T) {
	c := &Common{Timeout: time.Minute}
	ctx, cancel := c.Context()
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("-timeout set but context has no deadline")
	}

	c = &Common{}
	ctx, cancel = c.Context()
	if _, ok := ctx.Deadline(); ok {
		t.Error("no -timeout but context has a deadline")
	}
	cancel()
	if ctx.Err() == nil {
		t.Error("cancel func did not cancel the context")
	}
}

func TestRegistrySelection(t *testing.T) {
	if (&Common{}).Registry(false).Enabled() {
		t.Error("no outputs requested but registry is enabled")
	}
	if !(&Common{MetricsPath: "-"}).Registry(false).Enabled() {
		t.Error("-metrics set but registry is a Nop")
	}
	if !(&Common{}).Registry(true).Enabled() {
		t.Error("caller wants instrumentation but registry is a Nop")
	}
}

func TestFailAndUsageError(t *testing.T) {
	if got := Fail(errors.New("boom")); got != fault.ExitFailed {
		t.Errorf("Fail = %d, want %d", got, fault.ExitFailed)
	}
	if got := Fail(context.DeadlineExceeded); got != fault.ExitFailed {
		t.Errorf("Fail(deadline) = %d, want %d", got, fault.ExitFailed)
	}
}

func TestStartPprofDisabled(t *testing.T) {
	if err := (&Common{}).StartPprof(); err != nil {
		t.Errorf("empty -pprof should be a no-op: %v", err)
	}
}

func TestWriteMetricsDisabled(t *testing.T) {
	if err := (&Common{}).WriteMetrics(nil); err != nil {
		t.Errorf("empty -metrics should be a no-op: %v", err)
	}
}

// TestCmdsRouteThroughSharedLayer is the drift regression: every cmd tool
// that parses the common flags must import this package and must not
// re-declare the shared flag names locally. If a tool grows its own
// flag.Int("j", ...) again, the single-definition property this package
// exists for is gone — this test is the tripwire.
func TestCmdsRouteThroughSharedLayer(t *testing.T) {
	tools := []string{"svtiming", "opcrun", "lithosim", "svtimingd"}
	shared := []string{`"j"`, `"timeout"`, `"metrics"`, `"pprof"`, `"engine"`, `"kernel-budget"`, `"row-cache"`, `"on-fault"`,
		`"max-inflight"`, `"max-queue"`, `"queue-wait"`, `"request-timeout"`, `"drain-timeout"`, `"max-sessions"`}
	for _, tool := range tools {
		src, err := os.ReadFile(filepath.Join("..", "..", "cmd", tool, "main.go"))
		if err != nil {
			t.Fatalf("%s: %v", tool, err)
		}
		text := string(src)
		if !strings.Contains(text, `"svtiming/internal/cli"`) {
			t.Errorf("cmd/%s does not import internal/cli", tool)
		}
		if !strings.Contains(text, "cli.Register(") {
			t.Errorf("cmd/%s does not register the shared flags via cli.Register", tool)
		}
		for _, name := range shared {
			for _, decl := range []string{"flag.Int(", "flag.Duration(", "flag.String(", "flag.Float64(", "flag.Bool("} {
				if strings.Contains(text, decl+name) {
					t.Errorf("cmd/%s re-declares shared flag %s locally (%s...)", tool, name, decl)
				}
			}
		}
	}
}
