// Package cli is the shared command-line layer of the cmd tools: one
// definition of the common flags (-j, -timeout, -metrics, -pprof,
// -engine, -kernel-budget, -row-cache, -on-fault), one benchmark-name validator and
// one exit-code mapping, so svtiming, opcrun, lithosim and the resident
// svtimingd daemon cannot drift apart flag by flag.
//
// The flag values resolve into a core.Request — the serializable request
// schema the service speaks — which keeps "what the CLI runs" and "what
// the daemon serves" the same object by construction: a CLI invocation
// is exactly a request with a process attached.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"svtiming/internal/core"
	"svtiming/internal/expt"
	"svtiming/internal/fault"
	"svtiming/internal/litho"
	"svtiming/internal/netlist"
	"svtiming/internal/obs"
)

// Set selects which optional flag groups a tool registers beyond the
// always-present execution flags (-j, -timeout, -metrics, -pprof).
type Set uint

const (
	// Engine registers -engine and -kernel-budget (every tool that
	// builds a flow or images through the litho stack).
	Engine Set = 1 << iota
	// OnFault registers -on-fault (tools that run fault-policy sweeps).
	OnFault
	// Service registers the resident-daemon resilience flags
	// (-max-inflight, -max-queue, -queue-wait, -request-timeout,
	// -drain-timeout, -max-sessions). Only svtimingd sets it today, but the names,
	// defaults and help strings live here so any future resident tool
	// shares them instead of re-declaring.
	Service
)

// Common holds the shared flag values after parsing. Call Resolve once
// flag.Parse has run to turn the string-typed flags into their domain
// values (Engine, Policy) with a usage-grade error on bad input.
type Common struct {
	Jobs         int
	Timeout      time.Duration
	MetricsPath  string
	PprofAddr    string
	EngineName   string
	KernelBudget float64
	RowCache     int
	OnFaultName  string

	// Service-set values (resident daemons only).
	MaxInflight    int
	MaxQueue       int
	QueueWait      time.Duration
	RequestTimeout time.Duration
	DrainTimeout   time.Duration
	MaxSessions    int

	// Resolved by Resolve.
	Engine litho.Engine
	Policy core.FailurePolicy
}

// Register installs the shared flags on fs and returns the struct their
// values land in. Every tool gets -j, -timeout, -metrics and -pprof;
// sets opts in additional groups. Flag names, defaults and help strings
// live here once — the single point the satellite tools and the daemon
// share, so they cannot drift.
func Register(fs *flag.FlagSet, sets Set) *Common {
	c := &Common{}
	fs.IntVar(&c.Jobs, "j", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	fs.DurationVar(&c.Timeout, "timeout", 0, "overall deadline for the run (0 = none)")
	fs.StringVar(&c.MetricsPath, "metrics", "",
		"write the full metrics snapshot (including schedule-dependent counters) as JSON to this file on exit; \"-\" = stdout")
	fs.StringVar(&c.PprofAddr, "pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
	if sets&Engine != 0 {
		fs.StringVar(&c.EngineName, "engine", "auto",
			"aerial-image engine: socs (cached TCC kernel decomposition), abbe (per-source-point sum), or auto (socs for the nominal process); results agree within the kernel budget")
		fs.Float64Var(&c.KernelBudget, "kernel-budget", 0,
			"fraction of TCC energy SOCS truncation may drop (0 = the 1e-7 default, -1 = keep every kernel); only the socs engine reads it")
		fs.IntVar(&c.RowCache, "row-cache", 0,
			"bound on the content-addressed OPC row-solve cache, in completed row solves (0 = the built-in 4096, negative = disable caching); an execution knob — results are bit-identical at any setting")
	}
	if sets&OnFault != 0 {
		fs.StringVar(&c.OnFaultName, "on-fault", "fail-fast",
			"failure policy for the sweep: fail-fast aborts on the first failing benchmark, collect completes the sweep and reports degraded rows")
	}
	if sets&Service != 0 {
		fs.IntVar(&c.MaxInflight, "max-inflight", 0,
			"maximum run/batch requests executing concurrently; further requests wait in the admission queue (0 = the built-in 256)")
		fs.IntVar(&c.MaxQueue, "max-queue", 0,
			"admission wait-queue length beyond -max-inflight; a full queue sheds immediately with 429 (0 = the built-in 64, negative = no queue)")
		fs.DurationVar(&c.QueueWait, "queue-wait", 0,
			"longest a request may wait in the admission queue before being shed with 429 + Retry-After (0 = the built-in 1s)")
		fs.DurationVar(&c.RequestTimeout, "request-timeout", 0,
			"server-side deadline budget per request, composed with the client's own deadline; a 504 reports how far the run got (0 = none)")
		fs.DurationVar(&c.DrainTimeout, "drain-timeout", 15*time.Second,
			"on SIGTERM/SIGINT, how long in-flight requests may finish while readyz reports 503 and new requests are refused with Retry-After")
		fs.IntVar(&c.MaxSessions, "max-sessions", 0,
			"maximum resident /v1/edit incremental sessions, FIFO-evicted beyond (0 = the built-in 8)")
	}
	return c
}

// Resolve parses the enum-valued flags into their domain types. Call it
// after flag.Parse; a failure is a bad invocation (pair with UsageError).
func (c *Common) Resolve() error {
	engine, err := litho.ParseEngine(c.EngineName)
	if err != nil {
		return err
	}
	c.Engine = engine
	policy, err := core.ParsePolicy(c.OnFaultName)
	if err != nil {
		return err
	}
	c.Policy = policy
	return nil
}

// Request assembles the core.Request these flag values describe for the
// given benchmarks — the same schema svtimingd serves, so the one-shot
// CLI path and the resident service path are a single request surface.
func (c *Common) Request(benchmarks []string) core.Request {
	return core.Request{
		Benchmarks:   benchmarks,
		Engine:       c.EngineName,
		KernelBudget: c.KernelBudget,
		OnFault:      c.OnFaultName,
	}
}

// Context returns the tool's root context honouring -timeout. The cancel
// func must be deferred even when no timeout is set.
func (c *Common) Context() (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		return context.WithTimeout(context.Background(), c.Timeout)
	}
	return context.WithCancel(context.Background())
}

// Registry returns the metrics registry the flag values ask for: enabled
// when -metrics (or another output, e.g. svtiming's -manifest) needs it,
// a near-zero-cost Nop otherwise.
func (c *Common) Registry(alsoWanted bool) *obs.Registry {
	if c.MetricsPath != "" || alsoWanted {
		return expt.NewRegistry()
	}
	return obs.Nop()
}

// StartPprof starts the -pprof listener when requested. The error is a
// bad invocation (unusable address).
func (c *Common) StartPprof() error {
	if c.PprofAddr == "" {
		return nil
	}
	if err := expt.StartPprof(c.PprofAddr); err != nil {
		return fmt.Errorf("-pprof: %w", err)
	}
	return nil
}

// WriteMetrics writes the final snapshot when -metrics asked for one.
func (c *Common) WriteMetrics(reg *obs.Registry) error {
	if c.MetricsPath == "" {
		return nil
	}
	return expt.WriteMetrics(reg, c.MetricsPath)
}

// Benchmarks splits a comma-separated -circuits value, trims whitespace
// and validates every name against the built-in benchmark set. This is
// the one benchmark-name validation path of every cmd tool; the error
// lists the known names so a typo becomes a usage message.
func Benchmarks(csv string) ([]string, error) {
	names := strings.Split(csv, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
		if err := ValidateBenchmark(names[i]); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// ValidateBenchmark rejects an unknown benchmark name with the error
// every tool shows: the offending name plus the full known list.
func ValidateBenchmark(name string) error {
	if !netlist.Known(name) {
		return fmt.Errorf("unknown benchmark %q (known: %s)",
			name, strings.Join(netlist.Names(), ", "))
	}
	return nil
}

// Exit-code mapping, shared verbatim by every tool (and asserted against
// the daemon's HTTP statuses in internal/service): 0 clean, 1 completed
// degraded under the collect policy, 2 failed outright.

// ExitCode maps a run outcome onto the shared exit codes: a non-nil err
// is a failure (ExitFailed), a degraded result exits ExitDegraded, and a
// clean result (or nil res) exits ExitClean.
func ExitCode(res *core.RunResult, err error) int {
	if err != nil {
		return fault.ExitFailed
	}
	if res != nil && res.Degraded() {
		return fault.ExitDegraded
	}
	return fault.ExitClean
}

// Fail logs err through the tool's configured log prefix — translating a
// -timeout deadline hit into a friendlier message — and returns the
// failed exit code. The one implementation of the fail() helper every
// cmd tool used to carry.
func Fail(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		log.Print("run exceeded -timeout: ", err)
	} else {
		log.Print(err)
	}
	return fault.ExitFailed
}

// UsageError logs a bad-invocation message, prints flag usage and
// returns the failed exit code.
func UsageError(format string, args ...any) int {
	log.Printf(format, args...)
	flag.Usage()
	return fault.ExitFailed
}
