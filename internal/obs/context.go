package obs

import "context"

// ctxKey is the private context key carrying a *Registry.
type ctxKey struct{}

// NewContext returns ctx carrying the registry, so low-level layers
// (the par pools, the FEM grid sweep) can pick up instrumentation
// without signature changes. A nil or disabled registry is not
// attached — FromContext then returns nil, which every instrument
// treats as no-op.
func NewContext(ctx context.Context, r *Registry) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if !r.Enabled() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the registry carried by ctx, or nil (the no-op
// registry) when none is attached.
func FromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}
