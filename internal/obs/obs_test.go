package obs

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

// TestNilSafety drives every instrument method through the disabled
// paths: a Nop registry, a nil registry, and the nil handles they hand
// out. None of it may panic, and every read must come back zero.
func TestNilSafety(t *testing.T) {
	for _, r := range []*Registry{nil, Nop()} {
		if r.Enabled() {
			t.Fatal("disabled registry reports enabled")
		}
		c := r.Counter("c")
		if c != nil {
			t.Fatal("disabled registry handed out a live counter")
		}
		c.Inc()
		c.Add(5)
		if c.Value() != 0 {
			t.Error("nil counter holds a value")
		}
		g := r.Gauge("g")
		g.Set(7)
		if g.Value() != 0 {
			t.Error("nil gauge holds a value")
		}
		h := r.Histogram("h", []float64{1, 2})
		h.Observe(1.5)
		if h.Count() != 0 {
			t.Error("nil histogram holds observations")
		}
		sp := r.Span("stage")
		if sp != nil {
			t.Fatal("disabled registry handed out a live span")
		}
		sp.AddItems(3)
		sp.End()
		if r.OpenSpans() != 0 {
			t.Error("disabled registry tracks open spans")
		}
		if r.CounterValue("c") != 0 {
			t.Error("disabled registry reads a counter value")
		}
		snap := r.Snapshot()
		if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
			t.Error("disabled snapshot has nil maps")
		}
		if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Spans) != 0 {
			t.Errorf("disabled snapshot not empty: %+v", snap)
		}
	}
}

func TestCounterGaugeRegistration(t *testing.T) {
	r := New()
	if !r.Enabled() {
		t.Fatal("New() registry not enabled")
	}
	c := r.Counter("hits")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	// Same name resolves to the same instrument.
	if r.Counter("hits") != c {
		t.Error("re-registration returned a different counter")
	}
	if r.CounterValue("hits") != 3 {
		t.Errorf("CounterValue = %d", r.CounterValue("hits"))
	}
	if r.CounterValue("never-registered") != 0 {
		t.Error("unregistered counter reads nonzero")
	}
	g := r.Gauge("entries")
	g.Set(10)
	g.Set(4) // last write wins
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	if r.Gauge("entries") != g {
		t.Error("re-registration returned a different gauge")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("occupancy", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v) // bounds are inclusive: 1 → bucket ≤1, 100 → overflow
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	snap := r.Snapshot().Histograms["occupancy"]
	wantCounts := []int64{2, 2, 1, 1} // ≤1, ≤2, ≤4, overflow
	if len(snap.Counts) != len(wantCounts) {
		t.Fatalf("Counts = %v", snap.Counts)
	}
	for i, w := range wantCounts {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	// Later registrations reuse the first bounds.
	if h2 := r.Histogram("occupancy", []float64{100, 200}); h2 != h {
		t.Error("re-registration returned a different histogram")
	}
}

func TestSpansThroughFakeClock(t *testing.T) {
	tick := time.Unix(0, 0)
	r := New(WithClockFunc(func() time.Time {
		tick = tick.Add(10 * time.Millisecond)
		return tick
	}))
	sp := r.Span("characterize")
	if r.OpenSpans() != 1 {
		t.Fatalf("OpenSpans = %d", r.OpenSpans())
	}
	sp.AddItems(81)
	sp.End()
	if r.OpenSpans() != 0 {
		t.Fatalf("OpenSpans after End = %d", r.OpenSpans())
	}
	spans := r.Snapshot().Spans
	if len(spans) != 1 {
		t.Fatalf("Spans = %+v", spans)
	}
	got := spans[0]
	if got.Name != "characterize" || got.Items != 81 {
		t.Errorf("span = %+v", got)
	}
	// The stepping clock advanced exactly once between Span and End.
	if got.DurationNS != int64(10*time.Millisecond) {
		t.Errorf("DurationNS = %d, want %d", got.DurationNS, int64(10*time.Millisecond))
	}

	// Clockless (golden-mode) registry: zero duration, items intact.
	r2 := New()
	sp2 := r2.Span("table2")
	sp2.AddItems(5)
	sp2.End()
	if got := r2.Snapshot().Spans[0]; got.DurationNS != 0 || got.Items != 5 {
		t.Errorf("golden span = %+v", got)
	}
}

func TestSnapshotIsStableAndSorted(t *testing.T) {
	r := New()
	r.Counter("b").Add(2)
	r.Counter("a").Inc()
	r.Gauge("g").Set(9)
	r.Span("s2").End()
	r.Span("s1").End()

	s1 := r.Snapshot()
	// Spans come back in start order (Seq), not completion order.
	if s1.Spans[0].Name != "s2" || s1.Spans[1].Name != "s1" {
		t.Errorf("spans not in start order: %+v", s1.Spans)
	}
	b1, err := s1.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r.Snapshot().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("identical registry state encoded to different bytes")
	}
	if b1[len(b1)-1] != '\n' {
		t.Error("encoding lacks trailing newline")
	}
}

func TestStagesFromSnapshotIsScheduleInvariant(t *testing.T) {
	// Two registries record the same work with opposite start orders —
	// as parallel STA workers would. The manifest stages must agree.
	a, b := New(), New()
	for _, name := range []string{"sta", "sta", "opc"} {
		sp := a.Span(name)
		sp.AddItems(1)
		sp.End()
	}
	for _, name := range []string{"opc", "sta", "sta"} {
		sp := b.Span(name)
		sp.AddItems(1)
		sp.End()
	}
	sa := StagesFromSnapshot(a.Snapshot())
	sb := StagesFromSnapshot(b.Snapshot())
	if len(sa) != 3 || len(sb) != 3 {
		t.Fatalf("stage counts %d, %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Errorf("stage %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	if sa[0].Name != "opc" { // sorted by name, not Seq
		t.Errorf("stages not name-sorted: %+v", sa)
	}
}

func TestManifestEncodeDeterministic(t *testing.T) {
	m := &RunManifest{
		Tool:       "svtiming",
		Config:     map[string]string{"circuits": "c17", "on-fault": "fail-fast"},
		Benchmarks: []string{"c17"},
		Seeds:      map[string]int64{"c17": 1},
		Stages:     []StageTiming{{Name: "table2", Items: 1}},
		Cache:      CacheStats{Lookups: 10, Simulations: 4, Hits: 6},
		Pool:       PoolStats{Tasks: 12},
		Rows:       RowStats{Total: 1},
	}
	b1, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("same manifest encoded to different bytes")
	}
	// encoding/json sorts map keys: "circuits" renders before "on-fault".
	if ci, of := bytes.Index(b1, []byte("circuits")), bytes.Index(b1, []byte("on-fault")); ci < 0 || of < 0 || ci > of {
		t.Errorf("config keys not sorted in output:\n%s", b1)
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Many goroutines hammer one registry; totals must be exact and the
	// race detector (make tier2) must stay quiet.
	r := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist", []float64{0.5})
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 2))
				r.Gauge("last").Set(int64(i))
			}
			sp := r.Span("worker")
			sp.AddItems(per)
			sp.End()
		}()
	}
	wg.Wait()
	if v := r.CounterValue("shared"); v != workers*per {
		t.Errorf("counter = %d, want %d", v, workers*per)
	}
	snap := r.Snapshot()
	if n := snap.Histograms["hist"].Counts[0] + snap.Histograms["hist"].Counts[1]; n != workers*per {
		t.Errorf("histogram total = %d, want %d", n, workers*per)
	}
	if len(snap.Spans) != workers {
		t.Errorf("span count = %d, want %d", len(snap.Spans), workers)
	}
	if r.OpenSpans() != 0 {
		t.Errorf("OpenSpans = %d", r.OpenSpans())
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := New()
	ctx := NewContext(context.Background(), r)
	if FromContext(ctx) != r {
		t.Error("context did not round-trip the registry")
	}
	if got := FromContext(context.Background()); got.Enabled() {
		t.Errorf("empty context yielded an enabled registry: %v", got)
	}
}
