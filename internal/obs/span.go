package obs

import "time"

// SpanRecord is one completed stage span: what ran, how long it took
// against the injected clock, and how many items it processed. Seq is
// the start order (atomic), which is deterministic for spans opened
// from one goroutine — the flow's stage spans all are.
type SpanRecord struct {
	Name       string `json:"name"`
	Seq        int64  `json:"seq"`
	DurationNS int64  `json:"duration_ns"`
	Items      int64  `json:"items"`
}

// Span is one in-flight stage measurement. Obtain with Registry.Span,
// finish with End. The nil Span (from a disabled registry) is a valid
// no-op.
type Span struct {
	reg   *Registry
	name  string
	seq   int64
	start time.Time
	items atomic64
}

// atomic64 is a tiny alias wrapper so Span stays copy-averse without
// importing sync/atomic here twice; it reuses Counter's representation.
type atomic64 = Counter

// Span starts a named stage span. Returns nil (no-op) on a disabled or
// nil registry. Timing uses the registry's injected clock; with no
// clock the span records a zero duration (golden mode) but still counts
// items and preserves start order.
func (r *Registry) Span(name string) *Span {
	if !r.Enabled() {
		return nil
	}
	s := &Span{reg: r, name: name, seq: r.spanSeq.Add(1)}
	if r.clock != nil {
		s.start = r.clock()
	}
	r.spanOpen.Add(1)
	return s
}

// AddItems attributes n processed items (rows, grid cells, benchmarks)
// to the span. No-op on nil.
func (s *Span) AddItems(n int64) {
	if s == nil {
		return
	}
	s.items.Add(n)
}

// End completes the span and records it in the registry. No-op on nil;
// calling End twice records the span twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	var d time.Duration
	if s.reg.clock != nil {
		d = s.reg.clock().Sub(s.start)
	}
	rec := SpanRecord{
		Name:       s.name,
		Seq:        s.seq,
		DurationNS: int64(d),
		Items:      s.items.Value(),
	}
	s.reg.spanMu.Lock()
	s.reg.spans = append(s.reg.spans, rec)
	s.reg.spanMu.Unlock()
	s.reg.spanOpen.Add(-1)
}

// OpenSpans reports the number of started-but-unfinished spans, a leak
// diagnostic for tests. Zero for a disabled or nil registry.
func (r *Registry) OpenSpans() int64 {
	if !r.Enabled() {
		return 0
	}
	return r.spanOpen.Load()
}
