// Package obs is the dependency-free observability layer of the flow:
// counters, gauges and fixed-bucket histograms collected in a Registry,
// plus stage Spans timed against an injectable clock (see span.go) and
// the RunManifest every cmd tool can emit (see manifest.go).
//
// Design rules, mirroring the determinism contract of internal/par:
//
//   - Metrics never feed back into numeric results. Everything in this
//     package is write-mostly telemetry; no flow stage reads a counter to
//     decide anything. An enabled Registry therefore changes no output
//     bit versus Nop() (pinned by the root manifest_test.go).
//
//   - No-op when disabled. Nop() returns a disabled registry whose
//     instrument constructors hand out nil handles; every handle method
//     is nil-receiver safe, so instrumented hot paths cost one pointer
//     test when observability is off. A nil *Registry behaves like Nop().
//
//   - Zero allocation on the hot path. Handles are resolved once per
//     stage (a sharded map lookup under a per-shard mutex); recording is
//     a single atomic add with no allocation.
//
//   - No wall-clock reads. The registry never calls time.Now: span
//     timing flows through the clock function injected with
//     WithClockFunc (production wires expt.Now, tests wire a fake), so
//     svlint's walltime analyzer holds for this package too.
//
//   - Deterministic rendering. Snapshot sorts every map by key and
//     orders spans by start sequence, so two runs doing the same work
//     render their schedule-invariant metrics identically.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The nil Counter is
// a valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value. The nil Gauge is a
// valid no-op instrument.
type Gauge struct {
	v atomic.Int64
}

// Set records the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last recorded value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets chosen at
// registration. Buckets are upper bounds (inclusive), ascending; an
// implicit overflow bucket catches everything above the last bound.
// Only integer bucket counts are kept — no floating-point sum — so a
// histogram's state is independent of observation order and safe to
// fill from concurrent workers without perturbing determinism.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// shardCount spreads instrument registration over independent locks; it
// must be a power of two for the mask in shardFor. Registration is the
// cold path (once per stage), so a small table suffices.
const shardCount = 8

type shard struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Registry collects named instruments and completed spans. Construct an
// enabled registry with New and a disabled one with Nop; the zero value
// and the nil pointer both behave as disabled.
type Registry struct {
	enabled bool
	clock   func() time.Time // nil: spans record zero durations
	shards  [shardCount]shard

	spanMu   sync.Mutex
	spans    []SpanRecord
	spanSeq  atomic.Int64
	spanOpen atomic.Int64 // currently unfinished spans (diagnostic gauge)
}

// RegistryOption configures New.
type RegistryOption func(*Registry)

// WithClockFunc injects the time source spans are measured with.
// Production wires expt.Now so the svlint walltime contract holds;
// tests wire a fake for pinned timings. Without a clock, spans record
// zero durations (golden mode).
func WithClockFunc(now func() time.Time) RegistryOption {
	return func(r *Registry) { r.clock = now }
}

// New returns an enabled registry.
func New(opts ...RegistryOption) *Registry {
	r := &Registry{enabled: true}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Nop returns a disabled registry: instrument constructors return nil
// handles and spans are dropped. Sharing one process-wide Nop would be
// fine (it holds no state), but a fresh value keeps tests independent.
func Nop() *Registry { return &Registry{} }

// Enabled reports whether the registry records anything. False for nil.
func (r *Registry) Enabled() bool { return r != nil && r.enabled }

// fnv1a is a tiny inline string hash for shard selection (the cold
// registration path only).
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (r *Registry) shardFor(name string) *shard {
	return &r.shards[fnv1a(name)&(shardCount-1)]
}

// Counter returns the named counter, registering it on first use.
// Returns nil (the no-op instrument) on a disabled or nil registry.
func (r *Registry) Counter(name string) *Counter {
	if !r.Enabled() {
		return nil
	}
	s := r.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.counters[name]; ok {
		return c
	}
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	c := &Counter{}
	s.counters[name] = c
	return c
}

// Gauge returns the named gauge, registering it on first use. Returns
// nil on a disabled or nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if !r.Enabled() {
		return nil
	}
	s := r.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.gauges[name]; ok {
		return g
	}
	if s.gauges == nil {
		s.gauges = make(map[string]*Gauge)
	}
	g := &Gauge{}
	s.gauges[name] = g
	return g
}

// Histogram returns the named histogram, registering it with the given
// ascending bucket upper bounds on first use (later calls reuse the
// first registration's buckets). Returns nil on a disabled or nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if !r.Enabled() {
		return nil
	}
	s := r.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.histograms[name]; ok {
		return h
	}
	if s.histograms == nil {
		s.histograms = make(map[string]*Histogram)
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	s.histograms[name] = h
	return h
}

// CounterValue reads the named counter without registering it: 0 when
// absent or disabled. Manifest builders read through this.
func (r *Registry) CounterValue(name string) int64 {
	if !r.Enabled() {
		return 0
	}
	s := r.shardFor(name)
	s.mu.Lock()
	c := s.counters[name]
	s.mu.Unlock()
	return c.Value()
}
