package obs

import (
	"encoding/json"
	"sort"
)

// HistogramSnapshot is the rendered state of one histogram: parallel
// bucket bounds and counts, with the final entry of Counts holding the
// overflow bucket (no matching bound).
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot is a point-in-time rendering of a registry: sorted
// instrument maps plus completed spans in start order. Marshalling it
// with encoding/json yields deterministic bytes for deterministic
// metric values (JSON object keys sort; spans sort by Seq).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      []SpanRecord                 `json:"spans"`
}

// Snapshot renders the registry's current state. A disabled or nil
// registry yields an empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if !r.Enabled() {
		return snap
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for name, c := range s.counters {
			snap.Counters[name] = c.Value()
		}
		for name, g := range s.gauges {
			snap.Gauges[name] = g.Value()
		}
		for name, h := range s.histograms {
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
			}
			for j := range h.counts {
				hs.Counts[j] = h.counts[j].Load()
			}
			snap.Histograms[name] = hs
		}
		s.mu.Unlock()
	}
	r.spanMu.Lock()
	snap.Spans = append([]SpanRecord(nil), r.spans...)
	r.spanMu.Unlock()
	sort.SliceStable(snap.Spans, func(i, j int) bool { return snap.Spans[i].Seq < snap.Spans[j].Seq })
	return snap
}

// EncodeJSON renders the snapshot as indented JSON with a trailing
// newline. encoding/json sorts object keys, so the bytes are
// deterministic for deterministic metric values.
func (s Snapshot) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
