package obs

import (
	"encoding/json"
	"sort"
)

// StageTiming is one pipeline stage in a RunManifest: its injected-clock
// duration and how many items it processed. Under a fake zero-step
// clock (golden mode) DurationNS is 0 and the whole manifest is
// schedule-invariant.
type StageTiming struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
	Items      int64  `json:"items"`
}

// CacheStats summarizes the printed-CD cache in schedule-invariant
// terms. Lookups and Simulations are both pure functions of the work
// performed; Hits is derived as Lookups − Simulations rather than read
// from the racy hit/merge counters, so a serial run and an 8-worker run
// of the same sweep report identical numbers (the raw split between
// "hit a done entry" and "merged onto an in-flight simulation" depends
// on worker scheduling and is visible only in the full metrics dump).
type CacheStats struct {
	Lookups     int64 `json:"lookups"`
	Simulations int64 `json:"simulations"`
	Hits        int64 `json:"hits"`
}

// KernelCacheStats summarizes the SOCS kernel cache in schedule-invariant
// terms, mirroring CacheStats: singleflight guarantees every distinct
// optical configuration builds exactly once, so Lookups and Builds are
// pure functions of the workload and Hits derives as Lookups − Builds.
// EigenpairsKept and EnergyDroppedPpb (truncation loss, parts per billion
// of TCC trace, summed over builds) are per-build properties of the
// optics alone. Evictions are schedule-dependent in principle and belong
// to the metrics dump.
type KernelCacheStats struct {
	Lookups          int64 `json:"lookups"`
	Builds           int64 `json:"builds"`
	Hits             int64 `json:"hits"`
	EigenpairsKept   int64 `json:"eigenpairs_kept"`
	EnergyDroppedPpb int64 `json:"energy_dropped_ppb"`
}

// PoolStats summarizes the parallel execution engine's work in
// schedule-invariant terms: how many tasks ran and how many panics were
// contained. Per-worker occupancy histograms are schedule-dependent and
// live only in the metrics dump.
type PoolStats struct {
	Tasks           int64 `json:"tasks"`
	PanicsContained int64 `json:"panics_contained"`
}

// RowStats counts result rows and how many came back degraded.
type RowStats struct {
	Total    int `json:"total"`
	Degraded int `json:"degraded"`
}

// RowSolveStats summarizes the content-addressed OPC row-solve cache in
// schedule-invariant terms, mirroring CacheStats: singleflight guarantees
// every distinct row geometry solves exactly once, so Lookups and Solves
// are pure functions of the workload and Hits derives as Lookups − Solves.
// The raw hit/merge split and eviction timing depend on worker scheduling
// and are visible only in the full metrics dump.
type RowSolveStats struct {
	Lookups int64 `json:"lookups"`
	Solves  int64 `json:"solves"`
	Hits    int64 `json:"hits"`
}

// IncrStats summarizes an edit session's incremental re-timing work:
// edits applied, gates re-simulated against the wafer process, fan-out
// cones re-propagated across the six retained engines, and graceful full
// rebuilds (condition nudges). Every tally is schedule-invariant — the
// dirty-region rule and the levelized cone walks are deterministic — so
// the block belongs in the manifest, not the metrics dump.
type IncrStats struct {
	Edits             int64 `json:"edits"`
	GatesResimulated  int64 `json:"gates_resimulated"`
	ConesRepropagated int64 `json:"cones_repropagated"`
	FullRebuilds      int64 `json:"full_rebuilds"`
}

// RunManifest is the reproducibility record a cmd tool emits: what was
// asked for, what work was done, and (outside golden mode) how long
// each stage took. Every field is either configuration or a
// schedule-invariant tally, so two runs of the same workload at any
// parallelism emit byte-identical manifests once stage timings are
// pinned by a fake clock. Deliberately absent: worker counts, per-worker
// occupancy, raw hit/merge splits and anything else that varies with
// scheduling — those belong to the metrics dump, not the manifest.
type RunManifest struct {
	Tool       string            `json:"tool"`
	Config     map[string]string `json:"config"`
	Benchmarks []string          `json:"benchmarks"`
	Seeds      map[string]int64  `json:"seeds,omitempty"`
	Stages     []StageTiming     `json:"stages"`
	Cache      CacheStats        `json:"cache"`
	Kernels    KernelCacheStats  `json:"socs_kernels"`
	Pool       PoolStats         `json:"pool"`
	Rows       RowStats          `json:"rows"`
	// RowSolves reports the OPC row-solve cache (result rows above are
	// unrelated Table 2 rows; the name distinguishes the two).
	RowSolves RowSolveStats `json:"opc_rows"`
	// Incr reports the incremental re-timing engine's work; nil unless
	// the run applied edits through a session.
	Incr *IncrStats `json:"incr,omitempty"`
	// Faults maps fault-summary keys ("total", "stage:<s>", "kind:<k>")
	// to counts; empty on a clean run.
	Faults map[string]int `json:"faults,omitempty"`
}

// StagesFromSnapshot converts a registry snapshot's spans into manifest
// stage timings, sorted by (name, items, duration) rather than start
// sequence: spans opened inside worker goroutines (the per-analysis STA
// spans) acquire their sequence numbers in scheduling order, and the
// manifest must not depend on scheduling. Under a golden (zero-step)
// clock, equal work therefore renders equal bytes at any parallelism.
func StagesFromSnapshot(s Snapshot) []StageTiming {
	out := make([]StageTiming, 0, len(s.Spans))
	for _, sp := range s.Spans {
		out = append(out, StageTiming{Name: sp.Name, DurationNS: sp.DurationNS, Items: sp.Items})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if out[i].Items != out[j].Items {
			return out[i].Items < out[j].Items
		}
		return out[i].DurationNS < out[j].DurationNS
	})
	return out
}

// Encode renders the manifest as indented JSON with sorted object keys
// (encoding/json sorts map keys) and a trailing newline — the golden
// byte format the determinism contract pins.
func (m *RunManifest) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
