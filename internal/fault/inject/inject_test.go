package inject

import (
	"errors"
	"testing"

	"svtiming/internal/fault"
)

func TestEmptyPlanNeverFires(t *testing.T) {
	var p Plan
	h := p.Hook()
	for i := 0; i < 5; i++ {
		if err := h(fault.Coord{Stage: "table2", Index: i}); err != nil {
			t.Fatalf("empty plan fired at %d: %v", i, err)
		}
	}
}

func TestPlanFiresOnlyAtPlannedCoordinates(t *testing.T) {
	var p Plan
	p.InjectNaN("table2", 1).InjectNonConvergence("fem", 3)
	h := p.Hook()

	if err := h(fault.Coord{Stage: "table2", Index: 0}); err != nil {
		t.Errorf("unplanned point fired: %v", err)
	}
	if err := h(fault.Coord{Stage: "fem", Index: 1}); err != nil {
		t.Errorf("wrong stage fired: %v", err)
	}

	err := h(fault.Coord{Stage: "table2", Index: 1, Item: "c432"})
	var num *fault.Numeric
	if !errors.As(err, &num) {
		t.Fatalf("InjectNaN produced %v, want *fault.Numeric", err)
	}
	if num.At.Stage != "table2" || num.At.Index != 1 || num.At.Item != "c432" {
		t.Errorf("fault coordinate %v, want the consulted coordinate", num.At)
	}

	err = h(fault.Coord{Stage: "fem", Index: 3})
	var ncv *fault.NonConvergence
	if !errors.As(err, &ncv) || ncv.Iterations != 1000 {
		t.Fatalf("InjectNonConvergence produced %v", err)
	}
}

func TestPlanPanicActuallyPanics(t *testing.T) {
	var p Plan
	p.InjectPanic("table2", 2)
	h := p.Hook()
	defer func() {
		if recover() == nil {
			t.Error("InjectPanic hook did not panic")
		}
	}()
	_ = h(fault.Coord{Stage: "table2", Index: 2})
}

func TestPlansAreIndependent(t *testing.T) {
	var a, b Plan
	a.InjectNaN("table2", 0)
	if err := b.Hook()(fault.Coord{Stage: "table2", Index: 0}); err != nil {
		t.Errorf("plan b observed plan a's trigger: %v", err)
	}
}
