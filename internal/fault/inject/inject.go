// Package inject is the test-side half of the deterministic
// fault-injection harness: it builds fault.Hook functions that fire at
// chosen sweep coordinates. Production stages that support injection
// consult their configured hook (normally nil) with each point's
// coordinate before doing the point's real work; a Plan makes that hook
// fire a chosen fault class at chosen points and nothing anywhere else.
//
// Design constraints, all load-bearing:
//
//   - Deterministic. A trigger is keyed on (stage, index) — the discrete
//     address every sweep point already has — never on float coordinate
//     matching, so a plan fires at exactly the intended points on every
//     run and at every worker count.
//
//   - No global state. A Plan is a value owned by one test and armed by
//     explicit configuration (core.WithFaultInjection, or setting the
//     Flow's InjectHook field on a copy); two tests running in parallel
//     with different plans cannot observe each other.
//
//   - Real error paths. An injected NaN produces its error through the
//     production guard (fault.Finite over an actual NaN), and an injected
//     panic panics inside the hook so the worker pool's recover path —
//     not a simulation of it — is exercised.
//
// The package is imported only from tests; nothing in the production tree
// depends on it.
package inject

import (
	"fmt"
	"math"

	"svtiming/internal/fault"
)

// action is one planned fault class.
type action int

const (
	actNaN action = iota
	actNonConvergence
	actPanic
)

// key addresses one sweep point: the stage label production code passes
// in its fault.Coord plus the point's flat sweep index.
type key struct {
	stage string
	index int
}

// Plan is a set of faults to fire at chosen sweep coordinates. The zero
// value is an empty plan (its Hook never fires). Build it in the test,
// then arm it with core.WithFaultInjection(plan.Hook()). A Plan is not
// safe for mutation after Hook() has been handed to a running flow.
type Plan struct {
	acts map[key]action
}

func (p *Plan) set(stage string, index int, a action) *Plan {
	if p.acts == nil {
		p.acts = make(map[key]action)
	}
	p.acts[key{stage: stage, index: index}] = a
	return p
}

// InjectNaN plans a numeric fault at (stage, index): the hook routes an
// actual NaN through the production fault.Finite guard, so the resulting
// error is exactly what a corrupted kernel would produce.
func (p *Plan) InjectNaN(stage string, index int) *Plan {
	return p.set(stage, index, actNaN)
}

// InjectNonConvergence plans a solver-exhaustion fault at (stage, index).
func (p *Plan) InjectNonConvergence(stage string, index int) *Plan {
	return p.set(stage, index, actNonConvergence)
}

// InjectPanic plans a worker panic at (stage, index): the hook panics, so
// the containment path in internal/par — recover, *fault.Panic, sibling
// cancellation under FailFast — is exercised for real.
func (p *Plan) InjectPanic(stage string, index int) *Plan {
	return p.set(stage, index, actPanic)
}

// Hook returns the fault.Hook implementing the plan. Points not named by
// the plan pass through untouched (nil error).
func (p *Plan) Hook() fault.Hook {
	return func(at fault.Coord) error {
		a, ok := p.acts[key{stage: at.Stage, index: at.Index}]
		if !ok {
			return nil
		}
		switch a {
		case actNaN:
			return fault.Finite("injected quantity", math.NaN(), at)
		case actNonConvergence:
			return &fault.NonConvergence{
				At:         at,
				What:       "injected solver",
				Iterations: 1000,
				Residual:   0.5,
			}
		default:
			panic(fmt.Sprintf("injected panic at %s", at))
		}
	}
}
