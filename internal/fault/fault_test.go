package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

func TestTaxonomyIsAs(t *testing.T) {
	num := &Numeric{At: Coord{Stage: "printcd", Index: -1, Defocus: -150, Dose: 1.05}, Quantity: "printed CD", Value: math.NaN()}
	ncv := &NonConvergence{At: Coord{Stage: "characterize", Index: 3, Item: "nand2"}, What: "transient stage transition", Iterations: 4000, Residual: 0.37}
	pan := &Panic{Worker: 2, Index: 7, Value: "boom"}

	wrapped := func(err error) error { return fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", err)) }

	cases := []struct {
		err      error
		sentinel error
	}{
		{wrapped(num), ErrNumeric},
		{wrapped(ncv), ErrNonConvergence},
		{wrapped(pan), ErrPanic},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("errors.Is(%v, %v) = false, want true", c.err, c.sentinel)
		}
	}
	// Each typed error matches only its own sentinel.
	if errors.Is(num, ErrNonConvergence) || errors.Is(num, ErrPanic) {
		t.Error("*Numeric matched a foreign sentinel")
	}
	if errors.Is(ncv, ErrNumeric) || errors.Is(pan, ErrNumeric) {
		t.Error("foreign error matched ErrNumeric")
	}

	var gotNum *Numeric
	if !errors.As(wrapped(num), &gotNum) || gotNum.At.Stage != "printcd" {
		t.Errorf("errors.As failed to recover *Numeric through wrapping: %+v", gotNum)
	}
	var gotNcv *NonConvergence
	if !errors.As(wrapped(ncv), &gotNcv) || gotNcv.Iterations != 4000 {
		t.Errorf("errors.As failed to recover *NonConvergence: %+v", gotNcv)
	}
	var gotPan *Panic
	if !errors.As(wrapped(pan), &gotPan) || gotPan.Worker != 2 {
		t.Errorf("errors.As failed to recover *Panic: %+v", gotPan)
	}
}

func TestPanicUnwrapsErrorValue(t *testing.T) {
	inner := &Numeric{At: Coord{Stage: "fem", Index: 4}, Quantity: "CD", Value: math.Inf(1)}
	pan := &Panic{Worker: 0, Index: 4, Value: inner}
	if !errors.Is(pan, ErrNumeric) {
		t.Error("panic(err) should unwrap: errors.Is(pan, ErrNumeric) = false")
	}
	var got *Numeric
	if !errors.As(pan, &got) || got != inner {
		t.Error("errors.As through *Panic did not recover the panicked error")
	}
	// A non-error panic value unwraps to nothing.
	if (&Panic{Value: 42}).Unwrap() != nil {
		t.Error("Unwrap of a non-error panic value should be nil")
	}
}

func TestFiniteAndInRange(t *testing.T) {
	at := Coord{Stage: "sta", Index: -1, Item: "c432"}
	if err := Finite("arrival time", 12.5, at); err != nil {
		t.Errorf("Finite(12.5) = %v, want nil", err)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := Finite("arrival time", v, at)
		var num *Numeric
		if !errors.As(err, &num) {
			t.Fatalf("Finite(%g) = %v, want *Numeric", v, err)
		}
		if num.Quantity != "arrival time" || num.At != at {
			t.Errorf("Finite(%g) carried %q at %v", v, num.Quantity, num.At)
		}
	}
	if err := InRange("dose", 1.0, 0.5, 1.5, at); err != nil {
		t.Errorf("InRange inside window = %v, want nil", err)
	}
	for _, v := range []float64{0.4, 1.6, math.NaN()} {
		if err := InRange("dose", v, 0.5, 1.5, at); !errors.Is(err, ErrNumeric) {
			t.Errorf("InRange(%g) = %v, want ErrNumeric", v, err)
		}
	}
}

func TestCoordString(t *testing.T) {
	cases := []struct {
		c    Coord
		want string
	}{
		{Coord{Stage: "table2", Index: 1, Item: "c432"}, "table2[1] c432"},
		{Coord{Stage: "fem", Index: -1, Item: "dense", Defocus: -150, Dose: 1.05}, "fem[-] dense z=-150 dose=1.05"},
		{Coord{Index: -1}, "?[-]"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("Coord%+v.String() = %q, want %q", c.c, got, c.want)
		}
	}
}

func TestReportDeterministicOrder(t *testing.T) {
	mk := func() []Entry {
		return []Entry{
			{At: Coord{Stage: "table2", Index: 2, Item: "c880"}, Err: errors.New("a")},
			{At: Coord{Stage: "fem", Index: 5, Item: "iso", Dose: 0.95}, Err: errors.New("b")},
			{At: Coord{Stage: "fem", Index: 5, Item: "iso", Dose: 0.90}, Err: errors.New("c")},
			{At: Coord{Stage: "table2", Index: 0, Item: "c17"}, Err: errors.New("d")},
		}
	}
	// Insert in two different orders; rendered output must agree.
	var r1, r2 Report
	for _, e := range mk() {
		r1.Add(e.At, e.Err)
	}
	rev := mk()
	sort.SliceStable(rev, func(i, j int) bool { return j < i }) // reverse
	for _, e := range rev {
		r2.Add(e.At, e.Err)
	}
	if r1.String() != r2.String() {
		t.Errorf("report rendering depends on insertion order:\n%s\nvs\n%s", r1.String(), r2.String())
	}
	ents := r1.Entries()
	for i := 1; i < len(ents); i++ {
		if ents[i].At.Less(ents[i-1].At) {
			t.Errorf("entries not sorted: %v before %v", ents[i-1].At, ents[i].At)
		}
	}
	if got := r1.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if !strings.HasPrefix(r1.String(), "fem[5] iso") {
		t.Errorf("sorted report should start with the fem entries:\n%s", r1.String())
	}
	var empty Report
	empty.Add(Coord{}, nil) // nil errors ignored
	if empty.Len() != 0 || empty.String() != "no faults" {
		t.Errorf("empty report: Len=%d String=%q", empty.Len(), empty.String())
	}
}
