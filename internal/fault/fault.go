// Package fault is the typed error taxonomy of the fault-tolerant
// execution layer. The paper's headline tables are produced by hours-scale
// sweeps (FEM construction, process windows, per-trial Monte Carlo SSTA);
// production STA infrastructure treats a bad numeric point or a
// non-converging solver as a first-class, reportable outcome rather than a
// crash. This package defines the vocabulary every layer shares:
//
//   - *Numeric — a NaN, Inf or out-of-range value escaped a numeric
//     kernel (aerial-image intensity, printed CD, a characterized delay
//     table entry, a Bossung fit coefficient). Carries the offending
//     quantity, its value, and the sweep coordinates it occurred at.
//
//   - *NonConvergence — an iterative solver exhausted its budget (the
//     transient RK4 stage never completed its transition, a Bossung fit
//     had too few printable points). Carries the iteration count and the
//     final residual.
//
//   - *Panic — a worker goroutine panicked and internal/par contained it.
//     Carries the worker index, the item index, the recovered value and
//     the stack. Only internal/par may call recover (enforced by the
//     svlint nakedrecover analyzer); everything else returns errors.
//
// All three match errors.Is against the ErrNumeric / ErrNonConvergence /
// ErrPanic sentinels and errors.As against their pointer types, through
// arbitrary fmt.Errorf("…: %w", err) wrapping.
//
// The split between taxonomy errors and panics is deliberate: *runtime*
// numeric failure (data-dependent, can legitimately occur mid-sweep on bad
// process points) is returned; *programmer-error preconditions* (a
// non-power-of-two FFT length, an imager with NA ≥ 1, a recipe with no
// model process) stay panics — they indicate a bug, not a bad data point,
// and must not be silently absorbed into a degraded-run report.
package fault

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Category sentinels for errors.Is. They are never returned directly;
// the typed errors below report themselves as matching one of these.
var (
	// ErrNumeric matches any *Numeric fault.
	ErrNumeric = errors.New("fault: numeric failure")
	// ErrNonConvergence matches any *NonConvergence fault.
	ErrNonConvergence = errors.New("fault: solver non-convergence")
	// ErrPanic matches any *Panic fault.
	ErrPanic = errors.New("fault: contained panic")
)

// Coord locates a failure inside a sweep: which pipeline stage, which
// flat item index (the internal/par item number, -1 when the failure is
// not index-addressed), an optional item label (benchmark name, cell
// name, FEM pattern), and the exposure condition when the stage sweeps
// one. Dose 0 means "condition not recorded" (real relative doses are
// ≈1); nominal-focus points record Defocus 0 with a real Dose.
type Coord struct {
	Stage   string  // pipeline stage, e.g. "table2", "fem", "printcd"
	Index   int     // flat sweep index, -1 when not index-addressed
	Item    string  // item label: benchmark, cell, pattern ("" if n/a)
	Defocus float64 // defocus of the failing point, nm
	Dose    float64 // relative exposure dose; 0 = condition not recorded
}

// String renders the coordinate compactly and deterministically, e.g.
// "table2[1] c432" or "fem[-] dense z=-150 dose=1.05".
func (c Coord) String() string {
	var b strings.Builder
	if c.Stage == "" {
		b.WriteString("?")
	} else {
		b.WriteString(c.Stage)
	}
	if c.Index >= 0 {
		fmt.Fprintf(&b, "[%d]", c.Index)
	} else {
		b.WriteString("[-]")
	}
	if c.Item != "" {
		b.WriteString(" ")
		b.WriteString(c.Item)
	}
	if c.Dose != 0 {
		fmt.Fprintf(&b, " z=%g dose=%g", c.Defocus, c.Dose)
	}
	return b.String()
}

// Less orders coordinates deterministically: by stage, then item index,
// then item label, then exposure condition. fault.Report sorts with it.
func (c Coord) Less(o Coord) bool {
	if c.Stage != o.Stage {
		return c.Stage < o.Stage
	}
	if c.Index != o.Index {
		return c.Index < o.Index
	}
	if c.Item != o.Item {
		return c.Item < o.Item
	}
	if c.Defocus != o.Defocus { //lint:allow floateq exact coordinate ordering, not a tolerance comparison
		return c.Defocus < o.Defocus
	}
	return c.Dose < o.Dose
}

// Numeric reports a NaN, Inf or out-of-range value escaping a numeric
// kernel.
type Numeric struct {
	At       Coord
	Quantity string  // the offending quantity, e.g. "aerial intensity"
	Value    float64 // the offending value (NaN, ±Inf, or out of range)
}

func (e *Numeric) Error() string {
	return fmt.Sprintf("numeric fault at %s: %s = %g", e.At, e.Quantity, e.Value)
}

// Is matches the ErrNumeric category sentinel.
func (e *Numeric) Is(target error) bool { return target == ErrNumeric }

// NonConvergence reports an iterative solver exhausting its budget.
type NonConvergence struct {
	At         Coord
	What       string  // the solver, e.g. "transient stage transition"
	Iterations int     // iterations (or integration steps) consumed
	Residual   float64 // remaining residual when the budget ran out
}

func (e *NonConvergence) Error() string {
	return fmt.Sprintf("non-convergence at %s: %s did not converge after %d iterations (residual %g)",
		e.At, e.What, e.Iterations, e.Residual)
}

// Is matches the ErrNonConvergence category sentinel.
func (e *NonConvergence) Is(target error) bool { return target == ErrNonConvergence }

// Panic wraps a panic recovered by the internal/par worker pool.
type Panic struct {
	Worker int    // worker goroutine index; -1 for the inline serial path
	Index  int    // item index that panicked
	Value  any    // the recovered value
	Stack  []byte // the panicking goroutine's stack
}

func (e *Panic) Error() string {
	return fmt.Sprintf("panic in worker %d at item %d: %v", e.Worker, e.Index, e.Value)
}

// Is matches the ErrPanic category sentinel.
func (e *Panic) Is(target error) bool { return target == ErrPanic }

// Unwrap exposes a panicked error value (panic(err)) to errors.Is/As.
func (e *Panic) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Finite is the standard numeric guard: nil for a finite v, otherwise a
// *Numeric carrying the quantity, the bad value and the coordinate.
func Finite(quantity string, v float64, at Coord) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return &Numeric{At: at, Quantity: quantity, Value: v}
	}
	return nil
}

// InRange guards a quantity against an inclusive [lo, hi] window (NaN
// always fails): nil when inside, a *Numeric otherwise.
func InRange(quantity string, v, lo, hi float64, at Coord) error {
	if math.IsNaN(v) || v < lo || v > hi {
		return &Numeric{At: at, Quantity: quantity, Value: v}
	}
	return nil
}

// Hook is the fault-injection seam: production code that supports
// injection consults its (normally nil) hook at each sweep coordinate
// before doing the point's real work; a non-nil result is treated exactly
// like a failure produced by the work itself, and a panicking hook
// exercises the pool's containment path. Hooks are carried in the
// configuration of the component under test (a Flow field, a test-built
// Plan) — never in package-level state — so arming one run cannot leak
// into another. See internal/fault/inject for the test-side constructors.
type Hook func(at Coord) error
