package fault

import (
	"errors"
	"fmt"
	"testing"
)

func TestSummarizeCountsByStageAndKind(t *testing.T) {
	var r Report
	r.Add(Coord{Stage: "table2", Index: 0, Item: "c17"},
		&Numeric{At: Coord{Stage: "table2"}, Quantity: "delay", Value: 1})
	r.Add(Coord{Stage: "table2", Index: 1, Item: "c432"},
		fmt.Errorf("wrapped: %w", &NonConvergence{At: Coord{Stage: "tran"}, What: "transition"}))
	r.Add(Coord{Stage: "fullchip", Index: 3},
		&Panic{Worker: 2, Index: 3, Value: "boom"})
	r.Add(Coord{Stage: "fullchip", Index: 4}, errors.New("unclassified failure"))
	r.Add(Coord{Stage: "ignored"}, nil) // nil errors are dropped by Add

	s := r.Summarize()
	if s.Total != 4 {
		t.Fatalf("Total = %d, want 4", s.Total)
	}
	if s.ByStage["table2"] != 2 || s.ByStage["fullchip"] != 2 || len(s.ByStage) != 2 {
		t.Errorf("ByStage = %v", s.ByStage)
	}
	want := map[string]int{"numeric": 1, "non-convergence": 1, "panic": 1, "other": 1}
	for k, n := range want {
		if s.ByKind[k] != n {
			t.Errorf("ByKind[%q] = %d, want %d (all: %v)", k, s.ByKind[k], n, s.ByKind)
		}
	}
	if len(s.ByKind) != len(want) {
		t.Errorf("ByKind has extra entries: %v", s.ByKind)
	}
}

func TestSummarizeEmptyReport(t *testing.T) {
	var r Report
	s := r.Summarize()
	if s.Total != 0 {
		t.Errorf("Total = %d", s.Total)
	}
	// Maps must be non-nil so callers can index without guards.
	if s.ByStage == nil || s.ByKind == nil {
		t.Error("empty summary returned nil maps")
	}
}

func TestSummaryStringDeterministic(t *testing.T) {
	var r Report
	r.Add(Coord{Stage: "table2"}, &Numeric{})
	r.Add(Coord{Stage: "table2"}, &Numeric{})
	r.Add(Coord{Stage: "fem"}, &Panic{Worker: 0, Index: 1, Value: "x"})

	want := "3 faults (stages: fem=1 table2=2; kinds: numeric=2 panic=1)"
	// Render repeatedly: map iteration order must never leak through.
	for i := 0; i < 10; i++ {
		if got := r.Summarize().String(); got != want {
			t.Fatalf("Summary.String() = %q, want %q", got, want)
		}
	}
	if got := (Summary{}).String(); got != "0 faults" {
		t.Errorf("empty Summary.String() = %q", got)
	}
	one := Summary{Total: 1, ByStage: map[string]int{"fem": 1}, ByKind: map[string]int{"other": 1}}
	if got := one.String(); got != "1 fault (stages: fem=1; kinds: other=1)" {
		t.Errorf("singular Summary.String() = %q", got)
	}
}

func TestKindOfMatchesThroughWrapping(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{&Numeric{}, "numeric"},
		{fmt.Errorf("a: %w", fmt.Errorf("b: %w", &Numeric{})), "numeric"},
		{&NonConvergence{}, "non-convergence"},
		{&Panic{}, "panic"},
		{errors.New("plain"), "other"},
		{fmt.Errorf("wrapped plain: %w", errors.New("x")), "other"},
	}
	for _, c := range cases {
		if got := KindOf(c.err); got != c.want {
			t.Errorf("KindOf(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
