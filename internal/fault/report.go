package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Exit codes shared by every cmd tool: a run is clean, degraded (it
// completed under CollectAndReport but some sweep points failed and are
// marked rather than fabricated), or failed outright (including bad
// usage).
const (
	ExitClean    = 0
	ExitDegraded = 1
	ExitFailed   = 2
)

// Entry is one recorded fault: where it happened and what it was.
type Entry struct {
	At  Coord
	Err error
}

// Report accumulates the faults of a CollectAndReport run. The zero
// value is ready to use. Accumulation order does not matter: Entries and
// String sort by coordinate, so a report's rendering is deterministic
// regardless of worker scheduling.
type Report struct {
	entries []Entry
}

// Add records one fault. Nil errors are ignored so callers can add
// unconditionally.
func (r *Report) Add(at Coord, err error) {
	if err == nil {
		return
	}
	r.entries = append(r.entries, Entry{At: at, Err: err})
}

// Len reports the number of recorded faults.
func (r *Report) Len() int { return len(r.entries) }

// Entries returns the faults sorted by coordinate (stage, index, item,
// exposure condition). The returned slice is a copy.
func (r *Report) Entries() []Entry {
	out := make([]Entry, len(r.entries))
	copy(out, r.entries)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Less(out[j].At) })
	return out
}

// Summary is the aggregate view of a report: total fault count plus
// per-stage and per-kind breakdowns. It is what cmd tools print and what
// run manifests embed, so the counting lives here once instead of being
// re-derived (differently) at each call site.
type Summary struct {
	Total   int
	ByStage map[string]int // sweep-coordinate stage → count
	ByKind  map[string]int // "numeric" | "non-convergence" | "panic" | "other"
}

// KindOf names the taxonomy category of err: which fault sentinel it
// matches through any level of wrapping, or "other" for errors outside
// the taxonomy (e.g. context cancellation smuggled into a report).
func KindOf(err error) string {
	switch {
	case errors.Is(err, ErrNumeric):
		return "numeric"
	case errors.Is(err, ErrNonConvergence):
		return "non-convergence"
	case errors.Is(err, ErrPanic):
		return "panic"
	default:
		return "other"
	}
}

// Summarize returns the report's aggregate counts. The maps are freshly
// allocated (never nil) so callers can index without guards; iteration
// order is up to the caller — render through sorted keys (see the
// manifest builders) when the output must be deterministic.
func (r *Report) Summarize() Summary {
	s := Summary{
		Total:   len(r.entries),
		ByStage: make(map[string]int),
		ByKind:  make(map[string]int),
	}
	for _, e := range r.entries {
		s.ByStage[e.At.Stage]++
		s.ByKind[KindOf(e.Err)]++
	}
	return s
}

// String renders the summary as one deterministic line, e.g.
// "3 faults (stages: fem=1 table2=2; kinds: numeric=2 panic=1)".
// Keys are sorted so the rendering is stable across map iteration order.
func (s Summary) String() string {
	if s.Total == 0 {
		return "0 faults"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d fault", s.Total)
	if s.Total != 1 {
		b.WriteString("s")
	}
	b.WriteString(" (stages:")
	writeSortedCounts(&b, s.ByStage)
	b.WriteString("; kinds:")
	writeSortedCounts(&b, s.ByKind)
	b.WriteString(")")
	return b.String()
}

func writeSortedCounts(b *strings.Builder, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%d", k, m[k])
	}
}

// String renders the report one fault per line, coordinate-sorted.
func (r *Report) String() string {
	if r.Len() == 0 {
		return "no faults"
	}
	var b strings.Builder
	for _, e := range r.Entries() {
		b.WriteString(e.At.String())
		b.WriteString(": ")
		b.WriteString(e.Err.Error())
		b.WriteString("\n")
	}
	return b.String()
}
