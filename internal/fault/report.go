package fault

import (
	"sort"
	"strings"
)

// Exit codes shared by every cmd tool: a run is clean, degraded (it
// completed under CollectAndReport but some sweep points failed and are
// marked rather than fabricated), or failed outright (including bad
// usage).
const (
	ExitClean    = 0
	ExitDegraded = 1
	ExitFailed   = 2
)

// Entry is one recorded fault: where it happened and what it was.
type Entry struct {
	At  Coord
	Err error
}

// Report accumulates the faults of a CollectAndReport run. The zero
// value is ready to use. Accumulation order does not matter: Entries and
// String sort by coordinate, so a report's rendering is deterministic
// regardless of worker scheduling.
type Report struct {
	entries []Entry
}

// Add records one fault. Nil errors are ignored so callers can add
// unconditionally.
func (r *Report) Add(at Coord, err error) {
	if err == nil {
		return
	}
	r.entries = append(r.entries, Entry{At: at, Err: err})
}

// Len reports the number of recorded faults.
func (r *Report) Len() int { return len(r.entries) }

// Entries returns the faults sorted by coordinate (stage, index, item,
// exposure condition). The returned slice is a copy.
func (r *Report) Entries() []Entry {
	out := make([]Entry, len(r.entries))
	copy(out, r.entries)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Less(out[j].At) })
	return out
}

// String renders the report one fault per line, coordinate-sorted.
func (r *Report) String() string {
	if r.Len() == 0 {
		return "no faults"
	}
	var b strings.Builder
	for _, e := range r.Entries() {
		b.WriteString(e.At.String())
		b.WriteString(": ")
		b.WriteString(e.Err.Error())
		b.WriteString("\n")
	}
	return b.String()
}
