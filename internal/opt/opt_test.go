package opt

import (
	"strings"
	"sync"
	"testing"

	"svtiming/internal/core"
	"svtiming/internal/drc"
)

var (
	once sync.Once
	flow *core.Flow
)

func testFlow(t *testing.T) *core.Flow {
	t.Helper()
	once.Do(func() {
		f, err := core.NewFlow()
		if err != nil {
			t.Fatalf("NewFlow: %v", err)
		}
		flow = f
	})
	if flow == nil {
		t.Fatal("flow setup failed earlier")
	}
	return flow
}

func TestOptimizeImprovesWorstCase(t *testing.T) {
	f := testFlow(t)
	d, err := f.PrepareDesign("c432")
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeWhitespace(f, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AfterWC > res.BeforeWC+1e-9 {
		t.Errorf("optimization worsened WC: %v -> %v", res.BeforeWC, res.AfterWC)
	}
	if res.Moves == 0 {
		t.Error("no accepted moves on a whitespace-rich placement")
	}
	if res.Tried < res.Moves {
		t.Errorf("counters inconsistent: tried %d < moved %d", res.Tried, res.Moves)
	}
	if res.ImprovementPct() <= 0 {
		t.Errorf("improvement %v%%, want > 0", res.ImprovementPct())
	}
	// The state in d reflects the optimized placement: re-analysis agrees.
	rep, err := f.AnalyzeContextual(d, core.WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDelay != res.AfterWC {
		t.Errorf("design state (%v) disagrees with result (%v)", rep.MaxDelay, res.AfterWC)
	}
}

func TestOptimizedPlacementStaysLegal(t *testing.T) {
	f := testFlow(t)
	d, err := f.PrepareDesign("c880")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimizeWhitespace(f, d, Options{MaxMoves: 10}); err != nil {
		t.Fatal(err)
	}
	if err := d.Placement.Verify(); err != nil {
		t.Fatalf("placement illegal after optimization: %v", err)
	}
	for _, v := range drc.DrawnRules().CheckPlacement(d.Placement) {
		t.Errorf("DRC violation after optimization: %v", v)
	}
}

func TestOptimizeMoveBudget(t *testing.T) {
	f := testFlow(t)
	d, err := f.PrepareDesign("c432")
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeWhitespace(f, d, Options{MaxMoves: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves > 3 {
		t.Errorf("budget exceeded: %d moves", res.Moves)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	f := testFlow(t)
	d1, err := f.PrepareDesign("c432")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := OptimizeWhitespace(f, d1, Options{MaxMoves: 5})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := f.PrepareDesign("c432")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := OptimizeWhitespace(f, d2, Options{MaxMoves: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func TestReport(t *testing.T) {
	f := testFlow(t)
	d, err := f.PrepareDesign("c17")
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeWhitespace(f, d, Options{MaxMoves: 5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Report(f, d, res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "critical path") || !strings.Contains(s, "WC") {
		t.Errorf("Report = %q", s)
	}
}
