// Package opt implements litho-aware timing optimization: the direction
// the paper's conclusion points at ("the methodology brings process and
// design closer") and its published follow-up (self-compensating design).
//
// The knob is placement whitespace. A cell's border devices print at a
// pitch-dependent CD: on this process, tighter neighbor spacing prints
// longer (slower) gates. Redistributing row whitespace toward the cells on
// the critical path therefore shortens their printed gate lengths and the
// aware worst-case delay — an optimization that is *invisible* to
// traditional STA, which ignores placement context entirely.
package opt

import (
	"fmt"
	"math"

	"svtiming/internal/core"
)

// Options controls the optimizer.
type Options struct {
	MaxMoves int     // accepted-move budget (default 40)
	Step     float64 // whitespace quantum moved per attempt, nm (default 150)
	MinGap   float64 // never shrink a donor gap below this, nm (default 0)
}

func (o *Options) fill() {
	if o.MaxMoves == 0 {
		o.MaxMoves = 40
	}
	if o.Step == 0 {
		o.Step = 150
	}
}

// Result summarizes an optimization run.
type Result struct {
	BeforeWC float64 // aware worst-case delay before, ps
	AfterWC  float64 // after, ps
	Moves    int     // accepted whitespace moves
	Tried    int     // attempted moves
}

// ImprovementPct returns the relative WC delay improvement.
func (r Result) ImprovementPct() float64 {
	if r.BeforeWC <= 0 {
		return 0
	}
	return 100 * (1 - r.AfterWC/r.BeforeWC)
}

// OptimizeWhitespace greedily moves whitespace from the widest gap of a
// row to the flanks of critical-path cells in that row, re-running the
// aware worst-case analysis after each move and keeping only improvements.
// The design's placement and context annotations are updated in place.
func OptimizeWhitespace(f *core.Flow, d *core.Design, opt Options) (Result, error) {
	opt.fill()
	rep, err := f.AnalyzeContextual(d, core.WorstCase)
	if err != nil {
		return Result{}, err
	}
	res := Result{BeforeWC: rep.MaxDelay, AfterWC: rep.MaxDelay}

	for res.Moves < opt.MaxMoves {
		improved := false
		for _, inst := range rep.CriticalCells() {
			if res.Moves >= opt.MaxMoves {
				break
			}
			for _, side := range []int{-1, +1} { // widen left, then right
				res.Tried++
				undo, ok := widenGap(d, inst, side, opt)
				if !ok {
					continue
				}
				if err := f.RefreshContext(d); err != nil {
					return res, err
				}
				trial, err := f.AnalyzeContextual(d, core.WorstCase)
				if err != nil {
					return res, err
				}
				if trial.MaxDelay < res.AfterWC-1e-9 {
					res.AfterWC = trial.MaxDelay
					res.Moves++
					rep = trial
					improved = true
				} else {
					undo()
					if err := f.RefreshContext(d); err != nil {
						return res, err
					}
				}
			}
		}
		if !improved {
			break
		}
	}
	return res, nil
}

// widenGap moves opt.Step nm of whitespace from the row's widest gap to
// the chosen flank of inst, by sliding the intervening cells. It returns
// an undo closure and whether a legal move existed.
func widenGap(d *core.Design, inst, side int, opt Options) (func(), bool) {
	p := d.Placement
	row := p.Rows[p.Cells[inst].Row]
	pos := -1
	for k, i := range row {
		if i == inst {
			pos = k
		}
	}
	if pos < 0 {
		return nil, false
	}
	// Gap slots: gap k sits left of row[k]; gap len(row) is the right-end
	// slack (unbounded donor, zero-width receiver space at the row tail).
	gapAt := func(k int) float64 {
		switch {
		case k == 0:
			return p.Cells[row[0]].X
		case k < len(row):
			prev := p.Cells[row[k-1]]
			return p.Cells[row[k]].X - (prev.X + prev.Cell.Width)
		default:
			return math.Inf(1) // row tail: effectively unlimited slack
		}
	}
	target := pos
	if side > 0 {
		target = pos + 1
	}
	// Donor: the widest other gap (preferring the row tail, which is free).
	donor := len(row)
	best := gapAt(donor)
	for k := 0; k <= len(row); k++ {
		if k == target {
			continue
		}
		if g := gapAt(k); g > best {
			best = g
			donor = k
		}
	}
	if donor == target || best < opt.Step+opt.MinGap {
		return nil, false
	}
	// Shift the cells between the two slots: widening gap `target` using
	// slack from gap `donor` slides every cell in [min, max) range.
	shift := func(from, to int, dx float64) {
		for k := from; k < to && k < len(row); k++ {
			p.Cells[row[k]].X += dx
		}
	}
	var undo func()
	if donor > target {
		// Cells in [target, donor) move right by Step.
		shift(target, donor, +opt.Step)
		undo = func() { shift(target, donor, -opt.Step) }
	} else {
		// Cells in [donor, target) move left by Step.
		shift(donor, target, -opt.Step)
		undo = func() { shift(donor, target, +opt.Step) }
	}
	if err := p.Verify(); err != nil {
		undo()
		return nil, false
	}
	return undo, true
}

// Report renders an optimization result with the final critical path.
func Report(f *core.Flow, d *core.Design, res Result) (string, error) {
	rep, err := f.AnalyzeContextual(d, core.WorstCase)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"litho-aware whitespace optimization: WC %.1f ps -> %.1f ps (%.2f%% better, %d/%d moves)\n%s",
		res.BeforeWC, res.AfterWC, res.ImprovementPct(), res.Moves, res.Tried,
		rep.FormatPath(d.Netlist)), nil
}
