// Package geom provides the geometric primitives used throughout the
// systematic-variation aware timing flow: nanometer-denominated points,
// intervals and rectangles, plus the spacing and overlap queries needed to
// reason about poly-level layout context.
//
// All coordinates are float64 nanometers. The x axis runs along a placement
// row (left to right); the y axis runs across the row (bottom to top).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in layout space, in nanometers.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// Interval is a closed 1-D range [Lo, Hi] in nanometers. An Interval with
// Hi < Lo is empty.
type Interval struct {
	Lo, Hi float64
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Hi < iv.Lo }

// Len returns the length of the interval, or 0 if it is empty.
func (iv Interval) Len() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Center returns the midpoint of the interval.
func (iv Interval) Center() float64 { return (iv.Lo + iv.Hi) / 2 }

// Contains reports whether x lies in the closed interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Overlaps reports whether the two closed intervals share any point.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Intersect returns the common sub-interval (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{math.Max(iv.Lo, other.Lo), math.Min(iv.Hi, other.Hi)}
}

// Union returns the smallest interval covering both (treating either empty
// interval as absent).
func (iv Interval) Union(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{math.Min(iv.Lo, other.Lo), math.Max(iv.Hi, other.Hi)}
}

// Gap returns the separation between two disjoint intervals, or 0 if they
// touch or overlap.
func (iv Interval) Gap(other Interval) float64 {
	switch {
	case iv.Empty() || other.Empty():
		return math.Inf(1)
	case iv.Hi < other.Lo:
		return other.Lo - iv.Hi
	case other.Hi < iv.Lo:
		return iv.Lo - other.Hi
	default:
		return 0
	}
}

// Expand returns the interval grown by d on both ends (shrunk if d < 0).
func (iv Interval) Expand(d float64) Interval {
	return Interval{iv.Lo - d, iv.Hi + d}
}

// Rect is an axis-aligned rectangle [X.Lo,X.Hi] x [Y.Lo,Y.Hi] in nanometers.
type Rect struct {
	X, Y Interval
}

// NewRect builds a rectangle from two corner coordinates in any order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	return Rect{
		X: Interval{math.Min(x0, x1), math.Max(x0, x1)},
		Y: Interval{math.Min(y0, y1), math.Max(y0, y1)},
	}
}

// Empty reports whether the rectangle has no area and no extent.
func (r Rect) Empty() bool { return r.X.Empty() || r.Y.Empty() }

// W returns the width (x extent) of the rectangle.
func (r Rect) W() float64 { return r.X.Len() }

// H returns the height (y extent) of the rectangle.
func (r Rect) H() float64 { return r.Y.Len() }

// Area returns the rectangle's area in nm².
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the rectangle's center point.
func (r Rect) Center() Point { return Point{r.X.Center(), r.Y.Center()} }

// Contains reports whether p lies in the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return r.X.Contains(p.X) && r.Y.Contains(p.Y)
}

// Overlaps reports whether the two closed rectangles share any point.
func (r Rect) Overlaps(other Rect) bool {
	return r.X.Overlaps(other.X) && r.Y.Overlaps(other.Y)
}

// Intersect returns the common sub-rectangle (possibly empty).
func (r Rect) Intersect(other Rect) Rect {
	return Rect{r.X.Intersect(other.X), r.Y.Intersect(other.Y)}
}

// Union returns the bounding box of both rectangles.
func (r Rect) Union(other Rect) Rect {
	if r.Empty() {
		return other
	}
	if other.Empty() {
		return r
	}
	return Rect{r.X.Union(other.X), r.Y.Union(other.Y)}
}

// Translate returns the rectangle shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{
		X: Interval{r.X.Lo + d.X, r.X.Hi + d.X},
		Y: Interval{r.Y.Lo + d.Y, r.Y.Hi + d.Y},
	}
}

// HGap returns the horizontal clearance between two rectangles whose y spans
// overlap; it returns +Inf when the y spans do not overlap (the features do
// not face each other) and 0 when the x spans touch or overlap.
func (r Rect) HGap(other Rect) float64 {
	if !r.Y.Overlaps(other.Y) {
		return math.Inf(1)
	}
	return r.X.Gap(other.X)
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f]x[%.1f,%.1f]", r.X.Lo, r.X.Hi, r.Y.Lo, r.Y.Hi)
}

// BoundingBox returns the smallest rectangle covering all given rectangles.
// It returns an empty rectangle if rs is empty.
func BoundingBox(rs []Rect) Rect {
	out := Rect{Interval{1, 0}, Interval{1, 0}} // empty
	for _, r := range rs {
		out = out.Union(r)
	}
	return out
}
