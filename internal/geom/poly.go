package geom

import (
	"math"
	"sort"
)

// PolyLine is a single vertical polysilicon line, the fundamental feature of
// the poly layer in this flow. A line is described by the x coordinate of
// its centerline, its drawn width (the critical dimension), and its vertical
// span. Gates are the portions of poly lines crossing diffusion; for the
// purpose of optical proximity all poly geometry matters.
type PolyLine struct {
	CenterX float64  // centerline x position, nm
	Width   float64  // drawn linewidth (CD), nm
	Span    Interval // vertical extent, nm
}

// Rect returns the rectangle occupied by the line.
func (l PolyLine) Rect() Rect {
	return Rect{
		X: Interval{l.CenterX - l.Width/2, l.CenterX + l.Width/2},
		Y: l.Span,
	}
}

// LeftEdge returns the x coordinate of the line's left edge.
func (l PolyLine) LeftEdge() float64 { return l.CenterX - l.Width/2 }

// RightEdge returns the x coordinate of the line's right edge.
func (l PolyLine) RightEdge() float64 { return l.CenterX + l.Width/2 }

// Translate returns the line shifted by dx, dy.
func (l PolyLine) Translate(dx, dy float64) PolyLine {
	return PolyLine{
		CenterX: l.CenterX + dx,
		Width:   l.Width,
		Span:    Interval{l.Span.Lo + dy, l.Span.Hi + dy},
	}
}

// SortLinesByX sorts lines left to right by centerline position, in place.
func SortLinesByX(lines []PolyLine) {
	sort.Slice(lines, func(i, j int) bool { return lines[i].CenterX < lines[j].CenterX })
}

// NeighborSpacing describes the clearance from a poly line to its nearest
// facing poly neighbor on each side. Spacings are edge-to-edge, in nm.
// A side with no neighbor within the search window reports +Inf.
type NeighborSpacing struct {
	Left, Right float64
}

// Min returns the smaller of the two side spacings.
func (ns NeighborSpacing) Min() float64 { return math.Min(ns.Left, ns.Right) }

// Spacings computes, for each line in lines, the edge-to-edge clearance to
// the nearest line on its left and on its right whose vertical span overlaps
// the query span by at least minOverlap nm. Lines need not be sorted.
func Spacings(lines []PolyLine, minOverlap float64) []NeighborSpacing {
	idx := make([]int, len(lines))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return lines[idx[a]].CenterX < lines[idx[b]].CenterX })

	out := make([]NeighborSpacing, len(lines))
	for i := range out {
		out[i] = NeighborSpacing{Left: math.Inf(1), Right: math.Inf(1)}
	}
	for a, ia := range idx {
		la := lines[ia]
		// Walk left from a until a facing neighbor is found.
		for b := a - 1; b >= 0; b-- {
			lb := lines[idx[b]]
			if overlapLen(la.Span, lb.Span) >= minOverlap {
				g := la.LeftEdge() - lb.RightEdge()
				if g < 0 {
					g = 0
				}
				out[ia].Left = g
				break
			}
		}
		// Walk right.
		for b := a + 1; b < len(idx); b++ {
			lb := lines[idx[b]]
			if overlapLen(la.Span, lb.Span) >= minOverlap {
				g := lb.LeftEdge() - la.RightEdge()
				if g < 0 {
					g = 0
				}
				out[ia].Right = g
				break
			}
		}
	}
	return out
}

func overlapLen(a, b Interval) float64 {
	iv := a.Intersect(b)
	if iv.Empty() {
		return 0
	}
	return iv.Len()
}

// ClipLines returns the lines whose rectangles overlap window, with vertical
// spans clipped to the window's y range. Lines are returned sorted by x.
func ClipLines(lines []PolyLine, window Rect) []PolyLine {
	var out []PolyLine
	for _, l := range lines {
		if !l.Rect().Overlaps(window) {
			continue
		}
		c := l
		c.Span = c.Span.Intersect(window.Y)
		out = append(out, c)
	}
	SortLinesByX(out)
	return out
}
