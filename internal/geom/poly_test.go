package geom

import (
	"math"
	"math/rand"
	"testing"
)

func line(cx, w, y0, y1 float64) PolyLine {
	return PolyLine{CenterX: cx, Width: w, Span: Interval{y0, y1}}
}

func TestPolyLineEdgesAndRect(t *testing.T) {
	l := line(100, 90, 0, 1000)
	if l.LeftEdge() != 55 || l.RightEdge() != 145 {
		t.Errorf("edges = %v..%v", l.LeftEdge(), l.RightEdge())
	}
	r := l.Rect()
	if r.W() != 90 || r.H() != 1000 {
		t.Errorf("Rect = %v", r)
	}
	m := l.Translate(10, -5)
	if m.CenterX != 110 || m.Span != (Interval{-5, 995}) {
		t.Errorf("Translate = %+v", m)
	}
}

func TestSpacingsThreeLines(t *testing.T) {
	// Three parallel lines at centers 0, 300, 900, width 90.
	lines := []PolyLine{
		line(0, 90, 0, 1000),
		line(300, 90, 0, 1000),
		line(900, 90, 0, 1000),
	}
	sp := Spacings(lines, 1)
	if !math.IsInf(sp[0].Left, 1) {
		t.Errorf("line0 left = %v, want +Inf", sp[0].Left)
	}
	// Edge-to-edge: 300-45-45 = 210.
	if sp[0].Right != 210 || sp[1].Left != 210 {
		t.Errorf("gap 0-1 = %v/%v, want 210", sp[0].Right, sp[1].Left)
	}
	// 900-300 = 600 center to center, minus width = 510.
	if sp[1].Right != 510 || sp[2].Left != 510 {
		t.Errorf("gap 1-2 = %v/%v, want 510", sp[1].Right, sp[2].Left)
	}
	if !math.IsInf(sp[2].Right, 1) {
		t.Errorf("line2 right = %v, want +Inf", sp[2].Right)
	}
	if sp[1].Min() != 210 {
		t.Errorf("Min = %v, want 210", sp[1].Min())
	}
}

func TestSpacingsRequiresFacingOverlap(t *testing.T) {
	// Second line is vertically offset so it doesn't face the first; the
	// third line does.
	lines := []PolyLine{
		line(0, 90, 0, 500),
		line(200, 90, 600, 1000), // above: no overlap with line 0
		line(400, 90, 0, 500),
	}
	sp := Spacings(lines, 1)
	// Line 0's right neighbor skips line 1 and lands on line 2.
	want := 400 - 45 - 45.0
	if sp[0].Right != want {
		t.Errorf("line0 right = %v, want %v (skip non-facing)", sp[0].Right, want)
	}
	if !math.IsInf(sp[1].Left, 1) || !math.IsInf(sp[1].Right, 1) {
		t.Errorf("offset line should see no facing neighbors, got %+v", sp[1])
	}
}

func TestSpacingsUnsortedInput(t *testing.T) {
	lines := []PolyLine{
		line(900, 90, 0, 1000),
		line(0, 90, 0, 1000),
		line(300, 90, 0, 1000),
	}
	sp := Spacings(lines, 1)
	// lines[2] (center 300) is the middle line.
	if sp[2].Left != 210 || sp[2].Right != 510 {
		t.Errorf("unsorted spacings = %+v", sp[2])
	}
}

func TestSpacingsOverlappingLinesClampToZero(t *testing.T) {
	lines := []PolyLine{line(0, 90, 0, 100), line(50, 90, 0, 100)}
	sp := Spacings(lines, 1)
	if sp[0].Right != 0 || sp[1].Left != 0 {
		t.Errorf("overlapping lines should report 0 gap, got %+v %+v", sp[0], sp[1])
	}
}

func TestClipLines(t *testing.T) {
	lines := []PolyLine{
		line(100, 90, 0, 1000),
		line(5000, 90, 0, 1000), // outside window
		line(300, 90, -500, 2000),
	}
	w := NewRect(0, 0, 1000, 1000)
	got := ClipLines(lines, w)
	if len(got) != 2 {
		t.Fatalf("ClipLines kept %d lines, want 2", len(got))
	}
	if got[0].CenterX != 100 || got[1].CenterX != 300 {
		t.Errorf("ClipLines order = %v,%v", got[0].CenterX, got[1].CenterX)
	}
	if got[1].Span != (Interval{0, 1000}) {
		t.Errorf("span not clipped: %v", got[1].Span)
	}
}

func TestSpacingsPropertySymmetric(t *testing.T) {
	// For a random row of non-overlapping equal-height lines, the right
	// spacing of line i must equal the left spacing of line i+1.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		lines := make([]PolyLine, n)
		x := 0.0
		for i := range lines {
			x += 150 + rng.Float64()*800
			lines[i] = line(x, 90, 0, 1000)
		}
		sp := Spacings(lines, 1)
		for i := 0; i < n-1; i++ {
			if math.Abs(sp[i].Right-sp[i+1].Left) > 1e-9 {
				t.Fatalf("trial %d: asymmetric spacing at %d: %v vs %v",
					trial, i, sp[i].Right, sp[i+1].Left)
			}
			wantGap := lines[i+1].LeftEdge() - lines[i].RightEdge()
			if math.Abs(sp[i].Right-wantGap) > 1e-9 {
				t.Fatalf("trial %d: wrong gap at %d: %v want %v", trial, i, sp[i].Right, wantGap)
			}
		}
	}
}
