package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Dist(q); math.Abs(got-math.Sqrt(13)) > 1e-12 {
		t.Errorf("Dist = %v", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Empty() {
		t.Fatal("non-empty interval reported empty")
	}
	if iv.Len() != 3 {
		t.Errorf("Len = %v, want 3", iv.Len())
	}
	if iv.Center() != 3.5 {
		t.Errorf("Center = %v, want 3.5", iv.Center())
	}
	if !iv.Contains(2) || !iv.Contains(5) || iv.Contains(5.001) {
		t.Error("Contains boundary behavior wrong")
	}
	empty := Interval{5, 2}
	if !empty.Empty() || empty.Len() != 0 {
		t.Error("empty interval misreported")
	}
}

func TestIntervalOverlapIntersectUnion(t *testing.T) {
	cases := []struct {
		a, b    Interval
		overlap bool
		inter   Interval
	}{
		{Interval{0, 2}, Interval{1, 3}, true, Interval{1, 2}},
		{Interval{0, 2}, Interval{2, 3}, true, Interval{2, 2}},
		{Interval{0, 1}, Interval{2, 3}, false, Interval{2, 1}},
		{Interval{0, 10}, Interval{3, 4}, true, Interval{3, 4}},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlap {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.overlap)
		}
		if got := c.a.Intersect(c.b); got.Empty() != c.inter.Empty() ||
			(!got.Empty() && got != c.inter) {
			t.Errorf("%v intersect %v = %v, want %v", c.a, c.b, got, c.inter)
		}
	}
	u := (Interval{0, 1}).Union(Interval{3, 4})
	if u != (Interval{0, 4}) {
		t.Errorf("Union = %v", u)
	}
	if got := (Interval{5, 2}).Union(Interval{1, 3}); got != (Interval{1, 3}) {
		t.Errorf("Union with empty = %v", got)
	}
}

func TestIntervalGap(t *testing.T) {
	if g := (Interval{0, 1}).Gap(Interval{3, 4}); g != 2 {
		t.Errorf("Gap = %v, want 2", g)
	}
	if g := (Interval{3, 4}).Gap(Interval{0, 1}); g != 2 {
		t.Errorf("Gap reversed = %v, want 2", g)
	}
	if g := (Interval{0, 2}).Gap(Interval{1, 3}); g != 0 {
		t.Errorf("Gap overlapping = %v, want 0", g)
	}
	if g := (Interval{0, 2}).Gap(Interval{5, 4}); !math.IsInf(g, 1) {
		t.Errorf("Gap to empty = %v, want +Inf", g)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(3, 4, 1, 2) // corners given out of order
	if r.X != (Interval{1, 3}) || r.Y != (Interval{2, 4}) {
		t.Fatalf("NewRect normalized to %v", r)
	}
	if r.W() != 2 || r.H() != 2 || r.Area() != 4 {
		t.Errorf("W/H/Area = %v/%v/%v", r.W(), r.H(), r.Area())
	}
	if r.Center() != (Point{2, 3}) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Point{1, 2}) || r.Contains(Point{0, 0}) {
		t.Error("Contains wrong")
	}
	moved := r.Translate(Point{10, 20})
	if moved != NewRect(11, 22, 13, 24) {
		t.Errorf("Translate = %v", moved)
	}
}

func TestRectOverlapAndHGap(t *testing.T) {
	a := NewRect(0, 0, 2, 10)
	b := NewRect(5, 0, 6, 10)
	if a.Overlaps(b) {
		t.Error("disjoint rects report overlap")
	}
	if g := a.HGap(b); g != 3 {
		t.Errorf("HGap = %v, want 3", g)
	}
	c := NewRect(5, 20, 6, 30) // no y overlap
	if g := a.HGap(c); !math.IsInf(g, 1) {
		t.Errorf("HGap without facing spans = %v, want +Inf", g)
	}
	d := NewRect(1, 5, 3, 6)
	if !a.Overlaps(d) || a.HGap(d) != 0 {
		t.Error("overlapping rects should have HGap 0")
	}
}

func TestBoundingBox(t *testing.T) {
	bb := BoundingBox([]Rect{NewRect(0, 0, 1, 1), NewRect(5, -2, 6, 3)})
	if bb != NewRect(0, -2, 6, 3) {
		t.Errorf("BoundingBox = %v", bb)
	}
	if !BoundingBox(nil).Empty() {
		t.Error("BoundingBox(nil) should be empty")
	}
}

func TestIntervalPropertyIntersectSubset(t *testing.T) {
	f := func(a0, a1, b0, b1 float64) bool {
		a := Interval{math.Min(a0, a1), math.Max(a0, a1)}
		b := Interval{math.Min(b0, b1), math.Max(b0, b1)}
		in := a.Intersect(b)
		if in.Empty() {
			return true
		}
		// Every point of the intersection lies in both intervals.
		return a.Contains(in.Lo) && a.Contains(in.Hi) && b.Contains(in.Lo) && b.Contains(in.Hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalPropertyUnionSuperset(t *testing.T) {
	f := func(a0, a1, b0, b1 float64) bool {
		a := Interval{math.Min(a0, a1), math.Max(a0, a1)}
		b := Interval{math.Min(b0, b1), math.Max(b0, b1)}
		u := a.Union(b)
		return u.Contains(a.Lo) && u.Contains(a.Hi) && u.Contains(b.Lo) && u.Contains(b.Hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectPropertyIntersectCommutes(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 float64) bool {
		a := NewRect(x0, y0, x1, y1)
		b := NewRect(x2, y2, x3, y3)
		i1 := a.Intersect(b)
		i2 := b.Intersect(a)
		if i1.Empty() && i2.Empty() {
			return true
		}
		return i1 == i2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
