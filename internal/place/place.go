// Package place implements the row-based standard-cell placement substrate.
//
// The timing methodology only consumes the *horizontal context* placement
// creates: which cell sits next to which, and how much whitespace separates
// them. A greedy row placer with a deterministic whitespace model produces
// the same distribution of placement environments a commercial placer
// would, which is all the experiments need.
package place

import (
	"fmt"
	"math"
	"math/rand"

	"svtiming/internal/geom"
	"svtiming/internal/netlist"
	"svtiming/internal/stdcell"
)

// Placed is one placed cell instance.
type Placed struct {
	Inst int // index into the netlist's Instances
	Cell *stdcell.Cell
	X    float64 // left edge of the cell, nm
	Row  int
}

// Placement is a legal row placement of a netlist.
type Placement struct {
	Netlist  *netlist.Netlist
	Rows     [][]int  // per row: indices into Cells, left to right
	Cells    []Placed // one per netlist instance, same order
	RowWidth float64  // target row width, nm
}

// Options controls the placer.
type Options struct {
	Utilization float64 // target row fill, 0 < u <= 1 (default 0.75)
	Seed        int64   // whitespace distribution seed (default: derived from name)
	RowWidth    float64 // fixed row width, nm (default: computed from area)
}

// SeedFor returns the whitespace-distribution seed Place derives for a
// netlist of the given name when Options.Seed is zero. Exported so run
// manifests can record the effective seed of each benchmark without
// re-deriving (and silently diverging from) the placer's rule.
func SeedFor(name string) int64 {
	var s int64
	for _, r := range name {
		s = s*31 + int64(r)
	}
	return s + 1
}

// Place assigns every instance of n to a row position. Instances are
// ordered by logic level (wiring locality) and packed into rows; the
// leftover whitespace in each row is split into inter-cell gaps drawn
// deterministically from a skewed distribution, so designs contain the
// tight-abutment and wide-gap contexts the methodology classifies.
func Place(n *netlist.Netlist, lib *stdcell.Library, opt Options) (*Placement, error) {
	if opt.Utilization == 0 {
		opt.Utilization = 0.75
	}
	if opt.Utilization < 0.05 || opt.Utilization > 1 {
		return nil, fmt.Errorf("place: utilization %v out of range", opt.Utilization)
	}
	if opt.Seed == 0 {
		opt.Seed = SeedFor(n.Name)
	}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}

	cells := make([]*stdcell.Cell, len(n.Instances))
	var totalW float64
	for i, g := range n.Instances {
		c, err := lib.Cell(g.Cell)
		if err != nil {
			return nil, err
		}
		cells[i] = c
		totalW += c.Width
	}

	rowWidth := opt.RowWidth
	if rowWidth <= 0 {
		// Aim for a roughly square block at the target utilization.
		area := totalW * stdcell.CellHeight / opt.Utilization
		rowWidth = sqrtApprox(area)
		if rowWidth < 4*totalW/float64(len(n.Instances)) {
			rowWidth = 4 * totalW / float64(len(n.Instances))
		}
	}

	p := &Placement{
		Netlist:  n,
		Cells:    make([]Placed, len(n.Instances)),
		RowWidth: rowWidth,
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	budget := rowWidth * opt.Utilization
	var row []int
	var used float64
	flushRow := func() {
		if len(row) == 0 {
			return
		}
		placeRow(p, cells, row, rowWidth-wsum(cells, row), rng)
		p.Rows = append(p.Rows, row)
		row = nil
		used = 0
	}
	for _, inst := range order {
		w := cells[inst].Width
		if used+w > budget && len(row) > 0 {
			flushRow()
		}
		row = append(row, inst)
		used += w
	}
	flushRow()

	for r, rowIdx := range p.Rows {
		for _, inst := range rowIdx {
			p.Cells[inst].Row = r
		}
	}
	return p, nil
}

func wsum(cells []*stdcell.Cell, row []int) float64 {
	var s float64
	for _, i := range row {
		s += cells[i].Width
	}
	return s
}

// placeRow distributes free whitespace into the row's n+1 gap slots with a
// skewed draw: many abutments, some small gaps, occasional wide gaps —
// the whitespace distribution the paper attributes most isolated devices
// to.
func placeRow(p *Placement, cells []*stdcell.Cell, row []int, free float64, rng *rand.Rand) {
	if free < 0 {
		free = 0
	}
	gaps := make([]float64, len(row)+1)
	remaining := free
	for g := range gaps {
		if remaining <= 0 {
			break
		}
		var want float64
		switch r := rng.Float64(); {
		case r < 0.45:
			want = 0 // abutment
		case r < 0.70:
			want = 150
		case r < 0.88:
			want = 300
		default:
			want = 600 + rng.Float64()*600
		}
		if want > remaining {
			want = remaining
		}
		gaps[g] = want
		remaining -= want
	}
	// Any leftover goes to the end of the row.
	gaps[len(gaps)-1] += remaining

	x := gaps[0]
	for k, inst := range row {
		p.Cells[inst] = Placed{Inst: inst, Cell: cells[inst], X: x}
		x += cells[inst].Width + gaps[k+1]
	}
}

func sqrtApprox(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// RowLines returns all poly features of row r, in placed coordinates.
func (p *Placement) RowLines(r int) []geom.PolyLine {
	var out []geom.PolyLine
	for _, inst := range p.Rows[r] {
		pc := p.Cells[inst]
		out = append(out, pc.Cell.PolyLines(pc.X)...)
	}
	geom.SortLinesByX(out)
	return out
}

// RowGateLines returns only the transistor gate lines of row r together
// with their owning instance and gate index, left to right.
type RowGate struct {
	Inst int // netlist instance index
	Gate int // gate index within the cell
	Line geom.PolyLine
}

// RowGates lists the transistor gates of a row with ownership information.
func (p *Placement) RowGates(r int) []RowGate {
	var out []RowGate
	for _, inst := range p.Rows[r] {
		pc := p.Cells[inst]
		for gi, l := range pc.Cell.GateLines(pc.X) {
			out = append(out, RowGate{Inst: inst, Gate: gi, Line: l})
		}
	}
	return out
}

// Neighbors returns the instance indices immediately left and right of
// inst in its row (-1 if none) and the corresponding whitespace gaps.
func (p *Placement) Neighbors(inst int) (left, right int, leftGap, rightGap float64) {
	pc := p.Cells[inst]
	row := p.Rows[pc.Row]
	left, right = -1, -1
	leftGap, rightGap = -1, -1
	for k, i := range row {
		if i != inst {
			continue
		}
		if k > 0 {
			left = row[k-1]
			lpc := p.Cells[left]
			leftGap = pc.X - (lpc.X + lpc.Cell.Width)
		}
		if k < len(row)-1 {
			right = row[k+1]
			rpc := p.Cells[right]
			rightGap = rpc.X - (pc.X + pc.Cell.Width)
		}
		break
	}
	return
}

// MoveCell shifts instance inst horizontally by dx nm within its row.
// The move must keep the placement legal — the cell may not cross (or
// overlap) its row neighbors and must stay inside [0, RowWidth] — and an
// illegal move is rejected with a descriptive error *before* any state
// changes, so a failed edit never leaves a half-applied placement.
func (p *Placement) MoveCell(inst int, dx float64) error {
	if inst < 0 || inst >= len(p.Cells) {
		return fmt.Errorf("place: instance %d out of range [0,%d)", inst, len(p.Cells))
	}
	pc := &p.Cells[inst]
	newX := pc.X + dx
	left, right, _, _ := p.Neighbors(inst)
	lo := 0.0
	if left >= 0 {
		lpc := p.Cells[left]
		lo = lpc.X + lpc.Cell.Width
	}
	hi := math.Inf(1)
	if right >= 0 {
		hi = p.Cells[right].X - pc.Cell.Width
	} else if p.RowWidth > 0 {
		hi = p.RowWidth - pc.Cell.Width
	}
	if newX < lo || newX > hi {
		return fmt.Errorf("place: moving instance %d by %v nm puts x=%v outside its legal range [%v,%v]",
			inst, dx, newX, lo, hi)
	}
	pc.X = newX
	return nil
}

// SwapMaster replaces the cell master of inst with c (a resize: e.g.
// INVX1 ↔ INVX2), keeping the left edge fixed. The new master must have
// the same input pin count — the netlist connectivity is reused pin for
// pin — and must fit before the right neighbor (or the row edge). The
// netlist instance's cell name is updated in the same step, so placement
// and netlist never disagree about a master. Like MoveCell, an illegal
// swap is rejected before any state changes.
func (p *Placement) SwapMaster(inst int, c *stdcell.Cell) error {
	if inst < 0 || inst >= len(p.Cells) {
		return fmt.Errorf("place: instance %d out of range [0,%d)", inst, len(p.Cells))
	}
	pc := &p.Cells[inst]
	if len(c.Inputs) != len(pc.Cell.Inputs) {
		return fmt.Errorf("place: cannot swap instance %d from %s (%d inputs) to %s (%d inputs)",
			inst, pc.Cell.Name, len(pc.Cell.Inputs), c.Name, len(c.Inputs))
	}
	_, right, _, _ := p.Neighbors(inst)
	hi := math.Inf(1)
	if right >= 0 {
		hi = p.Cells[right].X
	} else if p.RowWidth > 0 {
		hi = p.RowWidth
	}
	if pc.X+c.Width > hi {
		return fmt.Errorf("place: swapping instance %d to %s (width %v) overruns its row slot ending at %v",
			inst, c.Name, c.Width, hi)
	}
	pc.Cell = c
	p.Netlist.Instances[inst].Cell = c.Name
	return nil
}

// Verify checks placement legality: no overlaps, rows within width, every
// instance placed exactly once.
func (p *Placement) Verify() error {
	seen := make(map[int]bool)
	for r, row := range p.Rows {
		lastEnd := -1.0
		for _, inst := range row {
			if seen[inst] {
				return fmt.Errorf("place: instance %d placed twice", inst)
			}
			seen[inst] = true
			pc := p.Cells[inst]
			if pc.X < lastEnd-1e-6 {
				return fmt.Errorf("place: overlap in row %d at instance %d", r, inst)
			}
			lastEnd = pc.X + pc.Cell.Width
		}
	}
	if len(seen) != len(p.Netlist.Instances) {
		return fmt.Errorf("place: %d of %d instances placed", len(seen), len(p.Netlist.Instances))
	}
	return nil
}
