package place

import (
	"math"
	"testing"

	"svtiming/internal/netlist"
)

func placedC432(t *testing.T) *Placement {
	t.Helper()
	n, err := netlist.GenerateNamed(lib, "c432")
	if err != nil {
		t.Fatalf("GenerateNamed: %v", err)
	}
	p, err := Place(n, lib, Options{})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	return p
}

// RowGeometry must agree with the legacy accessors: the same sorted lines
// as RowLines, the same gate list as RowGates, and LineIdx must point
// each gate at a line carrying exactly its own geometry bits.
func TestRowGeometryMatchesRowAccessors(t *testing.T) {
	p := placedC432(t)
	for r := range p.Rows {
		g := p.RowGeometry(r)
		lines := p.RowLines(r)
		if len(g.Lines) != len(lines) {
			t.Fatalf("row %d: %d lines vs RowLines %d", r, len(g.Lines), len(lines))
		}
		for i := range lines {
			if g.Lines[i] != lines[i] {
				t.Fatalf("row %d line %d: %+v vs RowLines %+v", r, i, g.Lines[i], lines[i])
			}
		}
		gates := p.RowGates(r)
		if len(g.Gates) != len(gates) {
			t.Fatalf("row %d: %d gates vs RowGates %d", r, len(g.Gates), len(gates))
		}
		if len(g.LineIdx) != len(g.Gates) {
			t.Fatalf("row %d: LineIdx %d entries for %d gates", r, len(g.LineIdx), len(g.Gates))
		}
		for gi := range gates {
			if g.Gates[gi] != gates[gi] {
				t.Fatalf("row %d gate %d: %+v vs RowGates %+v", r, gi, g.Gates[gi], gates[gi])
			}
			li := g.LineIdx[gi]
			if li < 0 || li >= len(g.Lines) {
				t.Fatalf("row %d gate %d: LineIdx %d out of range", r, gi, li)
			}
			if g.Lines[li] != gates[gi].Line {
				t.Fatalf("row %d gate %d: LineIdx %d resolves to %+v, want %+v",
					r, gi, li, g.Lines[li], gates[gi].Line)
			}
		}
	}
}

// The index join must survive coincident centerlines — the exact case
// the float-keyed map lookup could not represent (two lines, one key).
// Two abutted instances of a hypothetical cell whose stub sits on a gate
// centerline would collide; here we simulate the tie by hand-building a
// placement with two single-gate cells at the same X, which legal
// placements forbid but the sort must still resolve deterministically.
func TestRowGeometryCoincidentCenterlines(t *testing.T) {
	cell := lib.MustCell("INVX1")
	p := &Placement{
		Rows: [][]int{{0, 1}},
		Cells: []Placed{
			{Inst: 0, Cell: cell, X: 0, Row: 0},
			{Inst: 1, Cell: cell, X: 0, Row: 0}, // illegal overlap, deliberate
		},
	}
	g := p.RowGeometry(0)
	// Emission order must break the tie: instance 0's lines first.
	for i := 1; i < len(g.Lines); i++ {
		if g.Lines[i].CenterX < g.Lines[i-1].CenterX {
			t.Fatalf("lines not sorted at %d: %v after %v", i, g.Lines[i].CenterX, g.Lines[i-1].CenterX)
		}
	}
	if len(g.Gates) != 2 {
		t.Fatalf("want 2 gates, got %d", len(g.Gates))
	}
	if g.LineIdx[0] == g.LineIdx[1] {
		t.Fatalf("coincident gates collapsed onto one line index %d", g.LineIdx[0])
	}
	for gi, rg := range g.Gates {
		if got := g.Lines[g.LineIdx[gi]]; got != rg.Line {
			t.Fatalf("gate %d: line %+v, want %+v", gi, got, rg.Line)
		}
	}
}

// Reusing one pooled RowGeom across every row must reproduce the fresh
// extraction bit for bit — the aliasing contract of RowGeometryInto.
func TestRowGeometryIntoReuse(t *testing.T) {
	p := placedC432(t)
	g := AcquireRowGeom()
	defer ReleaseRowGeom(g)
	for r := range p.Rows {
		p.RowGeometryInto(g, r)
		fresh := p.RowGeometry(r)
		if len(g.Lines) != len(fresh.Lines) || len(g.Gates) != len(fresh.Gates) {
			t.Fatalf("row %d: reused geom shape differs", r)
		}
		for i := range fresh.Lines {
			if math.Float64bits(g.Lines[i].CenterX) != math.Float64bits(fresh.Lines[i].CenterX) ||
				math.Float64bits(g.Lines[i].Width) != math.Float64bits(fresh.Lines[i].Width) {
				t.Fatalf("row %d line %d differs on reuse", r, i)
			}
		}
		for gi := range fresh.LineIdx {
			if g.LineIdx[gi] != fresh.LineIdx[gi] {
				t.Fatalf("row %d gate %d: LineIdx %d vs %d", r, gi, g.LineIdx[gi], fresh.LineIdx[gi])
			}
		}
	}
	ReleaseRowGeom(nil) // nil release is a documented no-op
}
