package place

import (
	"math"
	"testing"

	"svtiming/internal/netlist"
	"svtiming/internal/stdcell"
)

var lib = stdcell.Default()

func placeBench(t *testing.T, name string, opt Options) *Placement {
	t.Helper()
	n := netlist.MustGenerate(lib, name)
	p, err := Place(n, lib, opt)
	if err != nil {
		t.Fatalf("Place(%s): %v", name, err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify(%s): %v", name, err)
	}
	return p
}

func TestPlaceC17Legal(t *testing.T) {
	placeBench(t, "c17", Options{})
}

func TestPlaceC432Legal(t *testing.T) {
	p := placeBench(t, "c432", Options{})
	if len(p.Rows) < 2 {
		t.Errorf("c432 placed in %d rows, expected several", len(p.Rows))
	}
	// Every row stays within ~row width.
	for r, row := range p.Rows {
		last := p.Cells[row[len(row)-1]]
		if end := last.X + last.Cell.Width; end > p.RowWidth*1.2 {
			t.Errorf("row %d extends to %v, width target %v", r, end, p.RowWidth)
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	n := netlist.MustGenerate(lib, "c432")
	p1, err := Place(n, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Place(n, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Cells {
		if p1.Cells[i].X != p2.Cells[i].X || p1.Cells[i].Row != p2.Cells[i].Row {
			t.Fatalf("instance %d placed at %v/%v then %v/%v",
				i, p1.Cells[i].X, p1.Cells[i].Row, p2.Cells[i].X, p2.Cells[i].Row)
		}
	}
}

func TestPlaceSeedChangesWhitespace(t *testing.T) {
	n := netlist.MustGenerate(lib, "c432")
	p1, _ := Place(n, lib, Options{Seed: 1})
	p2, _ := Place(n, lib, Options{Seed: 2})
	diff := false
	for i := range p1.Cells {
		if p1.Cells[i].X != p2.Cells[i].X {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical placements")
	}
}

func TestPlaceUtilizationRange(t *testing.T) {
	n := netlist.MustGenerate(lib, "c17")
	if _, err := Place(n, lib, Options{Utilization: 1.5}); err == nil {
		t.Error("utilization > 1 accepted")
	}
	if _, err := Place(n, lib, Options{Utilization: 0.01}); err == nil {
		t.Error("absurdly low utilization accepted")
	}
}

func TestWhitespaceDistribution(t *testing.T) {
	p := placeBench(t, "c880", Options{Utilization: 0.7})
	abut, gaps, wide := 0, 0, 0
	for _, row := range p.Rows {
		for k := 1; k < len(row); k++ {
			prev := p.Cells[row[k-1]]
			cur := p.Cells[row[k]]
			g := cur.X - (prev.X + prev.Cell.Width)
			switch {
			case g < 1:
				abut++
			case g < 500:
				gaps++
			default:
				wide++
			}
		}
	}
	if abut == 0 || gaps == 0 || wide == 0 {
		t.Errorf("whitespace distribution degenerate: abut=%d small=%d wide=%d", abut, gaps, wide)
	}
}

func TestNeighbors(t *testing.T) {
	p := placeBench(t, "c432", Options{})
	row := p.Rows[0]
	if len(row) < 3 {
		t.Skip("first row too short")
	}
	mid := row[1]
	l, r, lg, rg := p.Neighbors(mid)
	if l != row[0] || r != row[2] {
		t.Errorf("Neighbors = %d,%d want %d,%d", l, r, row[0], row[2])
	}
	if lg < 0 || rg < 0 {
		t.Errorf("gaps = %v,%v want >= 0", lg, rg)
	}
	first := row[0]
	l, _, lg, _ = p.Neighbors(first)
	if l != -1 || lg != -1 {
		t.Errorf("row-start neighbor = %d gap %v, want -1", l, lg)
	}
}

func TestRowLinesSortedAndComplete(t *testing.T) {
	p := placeBench(t, "c432", Options{})
	for r := range p.Rows {
		lines := p.RowLines(r)
		wantGates := 0
		wantTotal := 0
		for _, inst := range p.Rows[r] {
			wantGates += len(p.Cells[inst].Cell.Gates)
			wantTotal += len(p.Cells[inst].Cell.Gates) + len(p.Cells[inst].Cell.Stubs)
		}
		if len(lines) != wantTotal {
			t.Fatalf("row %d has %d lines, want %d", r, len(lines), wantTotal)
		}
		for i := 1; i < len(lines); i++ {
			if lines[i].CenterX < lines[i-1].CenterX {
				t.Fatalf("row %d lines not sorted", r)
			}
		}
		gates := p.RowGates(r)
		if len(gates) != wantGates {
			t.Fatalf("row %d has %d gates, want %d", r, len(gates), wantGates)
		}
	}
}

func TestRowGatesOwnership(t *testing.T) {
	p := placeBench(t, "c17", Options{})
	for r := range p.Rows {
		for _, rg := range p.RowGates(r) {
			pc := p.Cells[rg.Inst]
			wantX := pc.X + pc.Cell.Gates[rg.Gate].OffsetX
			if math.Abs(rg.Line.CenterX-wantX) > 1e-9 {
				t.Fatalf("gate line at %v, want %v", rg.Line.CenterX, wantX)
			}
		}
	}
}

func TestPlacePreservesAllGateCounts(t *testing.T) {
	p := placeBench(t, "c1355", Options{})
	totalGates := 0
	for r := range p.Rows {
		totalGates += len(p.RowGates(r))
	}
	want := 0
	for _, g := range p.Netlist.Instances {
		want += len(lib.MustCell(g.Cell).Gates)
	}
	if totalGates != want {
		t.Errorf("placement has %d gates, netlist wants %d", totalGates, want)
	}
}

func TestMoveCell(t *testing.T) {
	p := placeBench(t, "c432", Options{})

	// Find an instance with a real gap to its right neighbor.
	mover, gap := -1, 0.0
	for i := range p.Cells {
		if _, right, _, rg := p.Neighbors(i); right >= 0 && rg > 50 {
			mover, gap = i, rg
			break
		}
	}
	if mover < 0 {
		t.Fatal("no instance with a usable right gap")
	}
	oldX := p.Cells[mover].X
	if err := p.MoveCell(mover, gap/2); err != nil {
		t.Fatalf("legal move rejected: %v", err)
	}
	if p.Cells[mover].X != oldX+gap/2 { //lint:allow floateq a move adds dx exactly; bit-identity is the contract
		t.Errorf("X = %v, want %v", p.Cells[mover].X, oldX+gap/2)
	}
	if err := p.Verify(); err != nil {
		t.Errorf("placement illegal after legal move: %v", err)
	}

	// Moving to full abutment with the right neighbor is legal (gap 0).
	if err := p.MoveCell(mover, gap/2); err != nil {
		t.Fatalf("move to abutment rejected: %v", err)
	}
	// One more nanometer overlaps: rejected, state untouched.
	atAbut := p.Cells[mover].X
	if err := p.MoveCell(mover, 1); err == nil {
		t.Fatal("overlapping move accepted")
	}
	if p.Cells[mover].X != atAbut { //lint:allow floateq a rejected move must not change a single bit
		t.Error("failed move mutated the placement")
	}

	if err := p.MoveCell(-1, 10); err == nil {
		t.Error("out-of-range instance accepted")
	}
	if err := p.MoveCell(0, -1e9); err == nil {
		t.Error("move far past the row start accepted")
	}
}

func TestSwapMaster(t *testing.T) {
	p := placeBench(t, "c432", Options{})
	inv2 := lib.MustCell("INVX2")
	nand2 := lib.MustCell("NAND2X1")

	// Find an INVX1 with enough right slack to grow into an INVX2.
	target := -1
	for i := range p.Cells {
		if p.Cells[i].Cell.Name != "INVX1" {
			continue
		}
		if _, right, _, rg := p.Neighbors(i); right < 0 || rg >= inv2.Width-p.Cells[i].Cell.Width {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no INVX1 with room to grow")
	}
	if err := p.SwapMaster(target, nand2); err == nil {
		t.Error("pin-count-mismatched swap accepted")
	}
	if err := p.SwapMaster(target, inv2); err != nil {
		t.Fatalf("legal swap rejected: %v", err)
	}
	if p.Cells[target].Cell.Name != "INVX2" || p.Netlist.Instances[target].Cell != "INVX2" {
		t.Error("swap did not update both placement and netlist")
	}
	if err := p.Verify(); err != nil {
		t.Errorf("placement illegal after legal swap: %v", err)
	}
	if err := p.Netlist.Validate(lib); err != nil {
		t.Errorf("netlist invalid after swap: %v", err)
	}

	// A swap that overruns the right neighbor must be rejected untouched.
	squeezed := -1
	for i := range p.Cells {
		if p.Cells[i].Cell.Name != "INVX1" {
			continue
		}
		if _, right, _, rg := p.Neighbors(i); right >= 0 && rg < inv2.Width-p.Cells[i].Cell.Width {
			squeezed = i
			break
		}
	}
	if squeezed >= 0 {
		if err := p.SwapMaster(squeezed, inv2); err == nil {
			t.Error("overrunning swap accepted")
		}
		if p.Cells[squeezed].Cell.Name != "INVX1" {
			t.Error("failed swap mutated the placement")
		}
	}
	if err := p.SwapMaster(len(p.Cells), inv2); err == nil {
		t.Error("out-of-range instance accepted")
	}
}
