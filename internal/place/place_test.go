package place

import (
	"math"
	"testing"

	"svtiming/internal/netlist"
	"svtiming/internal/stdcell"
)

var lib = stdcell.Default()

func placeBench(t *testing.T, name string, opt Options) *Placement {
	t.Helper()
	n := netlist.MustGenerate(lib, name)
	p, err := Place(n, lib, opt)
	if err != nil {
		t.Fatalf("Place(%s): %v", name, err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify(%s): %v", name, err)
	}
	return p
}

func TestPlaceC17Legal(t *testing.T) {
	placeBench(t, "c17", Options{})
}

func TestPlaceC432Legal(t *testing.T) {
	p := placeBench(t, "c432", Options{})
	if len(p.Rows) < 2 {
		t.Errorf("c432 placed in %d rows, expected several", len(p.Rows))
	}
	// Every row stays within ~row width.
	for r, row := range p.Rows {
		last := p.Cells[row[len(row)-1]]
		if end := last.X + last.Cell.Width; end > p.RowWidth*1.2 {
			t.Errorf("row %d extends to %v, width target %v", r, end, p.RowWidth)
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	n := netlist.MustGenerate(lib, "c432")
	p1, err := Place(n, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Place(n, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Cells {
		if p1.Cells[i].X != p2.Cells[i].X || p1.Cells[i].Row != p2.Cells[i].Row {
			t.Fatalf("instance %d placed at %v/%v then %v/%v",
				i, p1.Cells[i].X, p1.Cells[i].Row, p2.Cells[i].X, p2.Cells[i].Row)
		}
	}
}

func TestPlaceSeedChangesWhitespace(t *testing.T) {
	n := netlist.MustGenerate(lib, "c432")
	p1, _ := Place(n, lib, Options{Seed: 1})
	p2, _ := Place(n, lib, Options{Seed: 2})
	diff := false
	for i := range p1.Cells {
		if p1.Cells[i].X != p2.Cells[i].X {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical placements")
	}
}

func TestPlaceUtilizationRange(t *testing.T) {
	n := netlist.MustGenerate(lib, "c17")
	if _, err := Place(n, lib, Options{Utilization: 1.5}); err == nil {
		t.Error("utilization > 1 accepted")
	}
	if _, err := Place(n, lib, Options{Utilization: 0.01}); err == nil {
		t.Error("absurdly low utilization accepted")
	}
}

func TestWhitespaceDistribution(t *testing.T) {
	p := placeBench(t, "c880", Options{Utilization: 0.7})
	abut, gaps, wide := 0, 0, 0
	for _, row := range p.Rows {
		for k := 1; k < len(row); k++ {
			prev := p.Cells[row[k-1]]
			cur := p.Cells[row[k]]
			g := cur.X - (prev.X + prev.Cell.Width)
			switch {
			case g < 1:
				abut++
			case g < 500:
				gaps++
			default:
				wide++
			}
		}
	}
	if abut == 0 || gaps == 0 || wide == 0 {
		t.Errorf("whitespace distribution degenerate: abut=%d small=%d wide=%d", abut, gaps, wide)
	}
}

func TestNeighbors(t *testing.T) {
	p := placeBench(t, "c432", Options{})
	row := p.Rows[0]
	if len(row) < 3 {
		t.Skip("first row too short")
	}
	mid := row[1]
	l, r, lg, rg := p.Neighbors(mid)
	if l != row[0] || r != row[2] {
		t.Errorf("Neighbors = %d,%d want %d,%d", l, r, row[0], row[2])
	}
	if lg < 0 || rg < 0 {
		t.Errorf("gaps = %v,%v want >= 0", lg, rg)
	}
	first := row[0]
	l, _, lg, _ = p.Neighbors(first)
	if l != -1 || lg != -1 {
		t.Errorf("row-start neighbor = %d gap %v, want -1", l, lg)
	}
}

func TestRowLinesSortedAndComplete(t *testing.T) {
	p := placeBench(t, "c432", Options{})
	for r := range p.Rows {
		lines := p.RowLines(r)
		wantGates := 0
		wantTotal := 0
		for _, inst := range p.Rows[r] {
			wantGates += len(p.Cells[inst].Cell.Gates)
			wantTotal += len(p.Cells[inst].Cell.Gates) + len(p.Cells[inst].Cell.Stubs)
		}
		if len(lines) != wantTotal {
			t.Fatalf("row %d has %d lines, want %d", r, len(lines), wantTotal)
		}
		for i := 1; i < len(lines); i++ {
			if lines[i].CenterX < lines[i-1].CenterX {
				t.Fatalf("row %d lines not sorted", r)
			}
		}
		gates := p.RowGates(r)
		if len(gates) != wantGates {
			t.Fatalf("row %d has %d gates, want %d", r, len(gates), wantGates)
		}
	}
}

func TestRowGatesOwnership(t *testing.T) {
	p := placeBench(t, "c17", Options{})
	for r := range p.Rows {
		for _, rg := range p.RowGates(r) {
			pc := p.Cells[rg.Inst]
			wantX := pc.X + pc.Cell.Gates[rg.Gate].OffsetX
			if math.Abs(rg.Line.CenterX-wantX) > 1e-9 {
				t.Fatalf("gate line at %v, want %v", rg.Line.CenterX, wantX)
			}
		}
	}
}

func TestPlacePreservesAllGateCounts(t *testing.T) {
	p := placeBench(t, "c1355", Options{})
	totalGates := 0
	for r := range p.Rows {
		totalGates += len(p.RowGates(r))
	}
	want := 0
	for _, g := range p.Netlist.Instances {
		want += len(lib.MustCell(g.Cell).Gates)
	}
	if totalGates != want {
		t.Errorf("placement has %d gates, netlist wants %d", totalGates, want)
	}
}
