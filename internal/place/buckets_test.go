package place

import (
	"math"
	"testing"

	"svtiming/internal/netlist"
	"svtiming/internal/stdcell"
)

// These tests pin the whitespace machinery quantitatively: which gap
// buckets the skewed draw can produce, how SeedFor ties a benchmark name
// to its placement, and that determinism holds across many seeds — not
// just the single-seed spot checks in place_test.go.

// gapsOf collects every interior inter-cell gap of the placement.
func gapsOf(p *Placement) []float64 {
	var out []float64
	for _, row := range p.Rows {
		for k := 1; k < len(row); k++ {
			prev := p.Cells[row[k-1]]
			cur := p.Cells[row[k]]
			out = append(out, cur.X-(prev.X+prev.Cell.Width))
		}
	}
	return out
}

func mustPlace(t *testing.T, name string, opt Options) *Placement {
	t.Helper()
	lib := stdcell.Default()
	n, err := netlist.GenerateNamed(lib, name)
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	p, err := Place(n, lib, opt)
	if err != nil {
		t.Fatalf("place %s: %v", name, err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify %s: %v", name, err)
	}
	return p
}

func TestGapBucketBoundaries(t *testing.T) {
	// The whitespace draw only emits gaps from four buckets: exact
	// abutment (0), 150 nm, 300 nm, or a wide gap in [600, 1200] — plus
	// the truncated remainders when a row's free budget runs dry and the
	// row-end slack. Interior gaps must therefore never land strictly
	// between the named values, e.g. (0, 150) or (300, 600), unless they
	// are a truncation (at most one per row, the last nonzero draw).
	p := mustPlace(t, "c880", Options{})
	named := []float64{0, 150, 300}
	offBucket := 0
	total := 0
	for _, g := range gapsOf(p) {
		total++
		inNamed := false
		for _, b := range named {
			if math.Abs(g-b) < 1e-9 {
				inNamed = true
			}
		}
		if inNamed || (g >= 600 && g <= 1200) {
			continue
		}
		offBucket++
	}
	if total < 100 {
		t.Fatalf("only %d interior gaps; benchmark too small to exercise the distribution", total)
	}
	// Truncated draws are bounded by one per row.
	if offBucket > len(p.Rows) {
		t.Errorf("%d off-bucket gaps exceed the %d-row truncation budget", offBucket, len(p.Rows))
	}
	// And the named buckets must all actually occur in a placement this
	// large — the distribution has 45%/25%/18% weight on them.
	counts := map[float64]int{}
	for _, g := range gapsOf(p) {
		for _, b := range named {
			if math.Abs(g-b) < 1e-9 {
				counts[b]++
			}
		}
	}
	for _, b := range named {
		if counts[b] == 0 {
			t.Errorf("bucket %v nm never drawn in %d gaps", b, total)
		}
	}
	// Abutment dominates: it carries nearly half the draw weight.
	if counts[0] <= counts[150] || counts[0] <= counts[300] {
		t.Errorf("abutment (%d) should dominate 150 nm (%d) and 300 nm (%d)",
			counts[0], counts[150], counts[300])
	}
}

func TestSeedForMatchesDefaultPlacement(t *testing.T) {
	// SeedFor is the exported name for the placer's internal derivation;
	// a placement at the explicit seed must be identical to the
	// zero-seed (derived) placement. This is what lets run manifests
	// record effective seeds without re-deriving the rule.
	auto := mustPlace(t, "c432", Options{})
	explicit := mustPlace(t, "c432", Options{Seed: SeedFor("c432")})
	if len(auto.Cells) != len(explicit.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(auto.Cells), len(explicit.Cells))
	}
	for i := range auto.Cells {
		if auto.Cells[i].X != explicit.Cells[i].X || auto.Cells[i].Row != explicit.Cells[i].Row {
			t.Fatalf("instance %d placed at (%v, row %d) vs (%v, row %d)", i,
				auto.Cells[i].X, auto.Cells[i].Row, explicit.Cells[i].X, explicit.Cells[i].Row)
		}
	}
	if SeedFor("c432") == SeedFor("c433") {
		t.Error("adjacent names derived the same seed")
	}
	// The rule maps the empty name to 1 (never the placer's "derive me"
	// sentinel 0), so even a nameless netlist gets a stable draw.
	if SeedFor("") != 1 {
		t.Errorf("SeedFor(\"\") = %d, want 1", SeedFor(""))
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	// For each of several seeds, two independent placements must agree
	// bit-for-bit — the whitespace draw may differ *between* seeds but
	// never within one. A latent map-iteration or time dependence in the
	// placer would fail this sweep with high probability.
	for _, seed := range []int64{1, 2, 7, 1 << 20, -3} {
		a := mustPlace(t, "c499", Options{Seed: seed})
		b := mustPlace(t, "c499", Options{Seed: seed})
		for i := range a.Cells {
			if a.Cells[i].X != b.Cells[i].X || a.Cells[i].Row != b.Cells[i].Row {
				t.Fatalf("seed %d: instance %d differs between identical runs", seed, i)
			}
		}
	}
	// Different seeds must actually change some whitespace (the draw is
	// not degenerate): compare total gap variety between two seeds.
	a := mustPlace(t, "c499", Options{Seed: 1})
	b := mustPlace(t, "c499", Options{Seed: 2})
	ga, gb := gapsOf(a), gapsOf(b)
	same := len(ga) == len(gb)
	if same {
		for i := range ga {
			if ga[i] != gb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical whitespace — seed is ignored")
	}
}

func TestRowBudgetRespectedAcrossSeeds(t *testing.T) {
	// Whatever the seed does to the gaps, every row must stay inside the
	// target width plus the end slack the placer grants itself: cells
	// never spill past RowWidth by more than numeric dust.
	for _, seed := range []int64{1, 99, 12345} {
		p := mustPlace(t, "c880", Options{Seed: seed})
		for r, row := range p.Rows {
			if len(row) == 0 {
				t.Fatalf("seed %d: empty row %d", seed, r)
			}
			last := p.Cells[row[len(row)-1]]
			if end := last.X + last.Cell.Width; end > p.RowWidth+1e-6 {
				t.Errorf("seed %d row %d: ends at %v, beyond row width %v", seed, r, end, p.RowWidth)
			}
		}
	}
}
