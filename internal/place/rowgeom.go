package place

import (
	"sort"
	"sync"

	"svtiming/internal/geom"
)

// RowGeom is one row's drawn geometry with the gate↔line join carried by
// index instead of by coordinate: Lines is the sorted row (what OPC
// corrects), Gates lists the transistor gates in RowGates order, and
// LineIdx[g] is the index into Lines of Gates[g]'s own poly line. The
// index join replaces the old map[float64]int x-coordinate lookup, whose
// "gate lost in row" failure mode depended on exact float bit equality
// between two independently-built PolyLine values.
type RowGeom struct {
	Lines   []geom.PolyLine
	Gates   []RowGate
	LineIdx []int

	// Sort scratch, reused across RowGeometryInto calls on a pooled
	// RowGeom so a full-chip sweep allocates row buffers once per worker
	// rather than once per row.
	perm    []int
	inv     []int
	scratch []geom.PolyLine
}

// rowGeomPool recycles RowGeom buffers across rows and full-chip sweeps;
// the cold OPC path extracts geometry for every row of every design, and
// the row buffers are pure scratch once the solve is done.
var rowGeomPool = sync.Pool{New: func() any { return new(RowGeom) }}

// AcquireRowGeom returns a RowGeom from the scratch pool. Release it with
// ReleaseRowGeom when the extracted geometry is no longer referenced.
func AcquireRowGeom() *RowGeom { return rowGeomPool.Get().(*RowGeom) }

// ReleaseRowGeom returns a RowGeom to the scratch pool. Releasing nil is
// a no-op so callers can defer unconditionally.
func ReleaseRowGeom(g *RowGeom) {
	if g != nil {
		rowGeomPool.Put(g)
	}
}

// RowGeometry extracts row r's geometry into a fresh RowGeom. Prefer
// Acquire/ReleaseRowGeom plus RowGeometryInto on hot paths.
func (p *Placement) RowGeometry(r int) *RowGeom {
	g := new(RowGeom)
	p.RowGeometryInto(g, r)
	return g
}

// RowGeometryInto extracts row r's geometry into g, reusing g's buffers.
// Lines are sorted left to right by centerline with ties broken by
// emission order (instances left to right, each cell's gates before its
// stubs), so the order is a pure function of the placement — unlike
// RowLines' unstable sort, which is only deterministic because legal
// placements never produce coincident centerlines.
//
// The populated slices alias g's internal buffers: they are valid until
// the next RowGeometryInto on the same g (or its release to the pool).
func (p *Placement) RowGeometryInto(g *RowGeom, r int) {
	g.Lines = g.Lines[:0]
	g.Gates = g.Gates[:0]
	g.LineIdx = g.LineIdx[:0]
	for _, inst := range p.Rows[r] {
		pc := p.Cells[inst]
		// PolyLines emits the cell's transistor gates first (gate gi at
		// offset gi from the cell's base), then its stubs — the invariant
		// TestPolyLinesGatesFirst pins in internal/stdcell.
		base := len(g.Lines)
		g.Lines = append(g.Lines, pc.Cell.PolyLines(pc.X)...)
		for gi := 0; gi < pc.Cell.NumGates(); gi++ {
			g.Gates = append(g.Gates, RowGate{Inst: inst, Gate: gi, Line: g.Lines[base+gi]})
			g.LineIdx = append(g.LineIdx, base+gi)
		}
	}

	// Index-carrying sort: order a permutation of line positions, apply
	// it to Lines, and remap LineIdx through the inverse, so every gate
	// keeps pointing at its own line however the row interleaves.
	n := len(g.Lines)
	g.perm = g.perm[:0]
	for i := 0; i < n; i++ {
		g.perm = append(g.perm, i)
	}
	sort.Slice(g.perm, func(a, b int) bool {
		ia, ib := g.perm[a], g.perm[b]
		//lint:allow floateq exact-bits tie detection: ties fall through to the index tie-break, never to an ordering decision
		if g.Lines[ia].CenterX != g.Lines[ib].CenterX {
			return g.Lines[ia].CenterX < g.Lines[ib].CenterX
		}
		return ia < ib
	})
	g.scratch = append(g.scratch[:0], g.Lines...)
	g.inv = g.inv[:0]
	for i := 0; i < n; i++ {
		g.inv = append(g.inv, 0)
	}
	for k, old := range g.perm {
		g.Lines[k] = g.scratch[old]
		g.inv[old] = k
	}
	for gi, old := range g.LineIdx {
		g.LineIdx[gi] = g.inv[old]
	}
}
