package context_test

import (
	"fmt"

	"svtiming/internal/context"
)

// Binning a placed instance's four neighbor spacings into one of the 81
// library versions (§3.1.3).
func ExampleNPS_Version() {
	nps := context.NPS{LT: 330, LB: 480, RT: 950, RB: 950}
	v := nps.Version()
	fmt.Println(v.Name(), "index", v.Index())
	// Output: v0122 index 17
}

// The Figure 5 device classification and the footnote-6 arc majority rule.
func ExampleClassifyArc() {
	// A NAND3 stack: two devices flanked by a 150 nm tight pitch on one
	// side, one fully isolated device.
	devices := []context.DeviceClass{
		context.ClassifyGate(600, 150), // self-compensated
		context.ClassifyGate(150, 210), // self-compensated
		context.ClassifyGate(210, 700), // isolated
	}
	fmt.Println(devices[0], "/", devices[1], "/", devices[2])
	fmt.Println("arc class:", context.ClassifyArc(devices))
	// Output:
	// self-compensated / self-compensated / isolated
	// arc class: self-compensated
}
