// Package context implements the placement-context analysis of the paper's
// §3.1.3 and §3.2: extracting the four neighbor-spacing parameters
// (nps_LT, nps_LB, nps_RT, nps_RB) for every placed cell instance, binning
// them into the 3×3×3×3 = 81 library versions, and classifying devices and
// timing arcs as dense/isolated/self-compensated for the focus-corner
// trims.
package context

import (
	"fmt"
	"math"

	"svtiming/internal/corners"
	"svtiming/internal/geom"
	"svtiming/internal/place"
	"svtiming/internal/stdcell"
)

// Spacing bins for the nps parameters (§4): {[..,400), [400,600), [600,..)}
// nm edge-to-edge spacing. The representative value of each bin is its
// *lower* edge: dense geometries print larger in this process, so the
// lower edge is the pessimistic choice.
const (
	NumBins = 3
	// NumVersions is the size of the expanded library per cell master.
	NumVersions = NumBins * NumBins * NumBins * NumBins // 81
)

var binEdges = [NumBins]float64{300, 400, 600}

// Bin maps an edge-to-edge spacing to its bin index. Spacings below the
// first edge clamp to bin 0; anything at or beyond 600 nm (the radius of
// influence) is bin 2, which also represents "no neighbor".
func Bin(spacing float64) int {
	switch {
	case spacing < binEdges[1]:
		return 0
	case spacing < binEdges[2]:
		return 1
	default:
		return 2
	}
}

// Representative returns the spacing value a bin is characterized at.
func Representative(bin int) float64 {
	if bin < 0 || bin >= NumBins {
		panic(fmt.Sprintf("context: bin %d out of range", bin))
	}
	return binEdges[bin]
}

// Version identifies one of the 81 context versions of a cell: the bin
// index of each of the four neighbor-spacing parameters.
type Version struct {
	LT, LB, RT, RB int
}

// Index returns the version's dense index in [0, 81).
func (v Version) Index() int {
	return ((v.LT*NumBins+v.LB)*NumBins+v.RT)*NumBins + v.RB
}

// Name returns the canonical version name, e.g. "v0120".
func (v Version) Name() string {
	return fmt.Sprintf("v%d%d%d%d", v.LT, v.LB, v.RT, v.RB)
}

// VersionFromIndex is the inverse of Index.
func VersionFromIndex(i int) Version {
	if i < 0 || i >= NumVersions {
		panic(fmt.Sprintf("context: version index %d out of range", i))
	}
	v := Version{}
	v.RB = i % NumBins
	i /= NumBins
	v.RT = i % NumBins
	i /= NumBins
	v.LB = i % NumBins
	v.LT = i / NumBins
	return v
}

// AllVersions enumerates all 81 versions in Index order.
func AllVersions() []Version {
	out := make([]Version, NumVersions)
	for i := range out {
		out[i] = VersionFromIndex(i)
	}
	return out
}

// NPS is the four neighbor-spacing parameters of a placed instance, in nm
// (+Inf where the instance has no neighbor on that side).
type NPS struct {
	LT, LB, RT, RB float64
}

// Version bins the parameters.
func (n NPS) Version() Version {
	return Version{LT: Bin(n.LT), LB: Bin(n.LB), RT: Bin(n.RT), RB: Bin(n.RB)}
}

// ExtractNPS computes the nps parameters of instance inst in the
// placement: the edge-to-edge distance from the instance's border devices
// to the nearest poly feature of the neighboring cell, separately for the
// PMOS (top) and NMOS (bottom) halves (Fig 4).
func ExtractNPS(p *place.Placement, inst int) NPS {
	pc := p.Cells[inst]
	sLT, sLB, sRT, sRB := pc.Cell.BorderClearances()
	left, right, leftGap, rightGap := p.Neighbors(inst)

	out := NPS{LT: math.Inf(1), LB: math.Inf(1), RT: math.Inf(1), RB: math.Inf(1)}
	if left >= 0 {
		_, _, nRT, nRB := p.Cells[left].Cell.BorderClearances()
		out.LT = sLT + leftGap + nRT
		out.LB = sLB + leftGap + nRB
	}
	if right >= 0 {
		nLT, nLB, _, _ := p.Cells[right].Cell.BorderClearances()
		out.RT = sRT + rightGap + nLT
		out.RB = sRB + rightGap + nLB
	}
	return out
}

// DeviceClass is the Fig 5 classification of a transistor gate.
type DeviceClass int

const (
	DeviceDense DeviceClass = iota
	DeviceIsolated
	DeviceSelfComp
)

func (d DeviceClass) String() string {
	switch d {
	case DeviceDense:
		return "dense"
	case DeviceIsolated:
		return "isolated"
	default:
		return "self-compensated"
	}
}

// DenseSpacingMax is the spacing threshold for a "dense" flank: below the
// contacted pitch less one drawn CD (footnote 5 of the paper: dense
// spacing is less than the contacted pitch).
const DenseSpacingMax = stdcell.ContactedPitch - stdcell.DrawnCD

// ClassifyGate labels a device by its two flank spacings: dense on both
// sides → dense; isolated on both → isolated; mixed → self-compensated.
func ClassifyGate(leftSpacing, rightSpacing float64) DeviceClass {
	return ClassifyGateAt(leftSpacing, rightSpacing, DenseSpacingMax)
}

// ClassifyGateAt is ClassifyGate with an explicit dense-spacing threshold,
// for dose studies: the smile/frown boundary spacing moves with exposure
// dose (§6), and a FEM-calibrated threshold can replace the geometric one.
func ClassifyGateAt(leftSpacing, rightSpacing, threshold float64) DeviceClass {
	l := leftSpacing < threshold
	r := rightSpacing < threshold
	switch {
	case l && r:
		return DeviceDense
	case !l && !r:
		return DeviceIsolated
	default:
		return DeviceSelfComp
	}
}

// ClassifyRow classifies every transistor gate in row r of the placement
// from the drawn layout (including neighbor-cell features). The result is
// keyed by (instance, gate index).
func ClassifyRow(p *place.Placement, r int) map[[2]int]DeviceClass {
	return ClassifyRowAt(p, r, DenseSpacingMax)
}

// ClassifyRowAt is ClassifyRow with an explicit dense-spacing threshold.
func ClassifyRowAt(p *place.Placement, r int, threshold float64) map[[2]int]DeviceClass {
	lines := p.RowLines(r)
	sp := geom.Spacings(lines, 1)
	// Match gate lines back to their positions in the sorted row lines.
	type key struct{ x float64 }
	byX := make(map[float64]int, len(lines))
	for i, l := range lines {
		byX[l.CenterX] = i
	}
	out := make(map[[2]int]DeviceClass)
	for _, rg := range p.RowGates(r) {
		i, ok := byX[rg.Line.CenterX]
		if !ok {
			continue // coincident lines; classification keeps the survivor
		}
		out[[2]int{rg.Inst, rg.Gate}] = ClassifyGateAt(sp[i].Left, sp[i].Right, threshold)
	}
	return out
}

// ClassifyArc applies the majority rule of §3.2 footnote 6: the arc takes
// the strict-majority device class (dense → smile, isolated → frown,
// self-compensated → self-compensated). Without a strict majority the
// arc's focus behavior is unknown and no corner may be trimmed, so it is
// left unclassified.
func ClassifyArc(devices []DeviceClass) corners.ArcClass {
	var dense, iso, self int
	for _, d := range devices {
		switch d {
		case DeviceDense:
			dense++
		case DeviceIsolated:
			iso++
		default:
			self++
		}
	}
	switch {
	case dense > iso && dense > self:
		return corners.Smile
	case iso > dense && iso > self:
		return corners.Frown
	case self > dense && self > iso:
		return corners.SelfCompensated
	default:
		return corners.Unclassified
	}
}
