package context

import (
	"math"
	"testing"

	"svtiming/internal/corners"
	"svtiming/internal/netlist"
	"svtiming/internal/place"
	"svtiming/internal/stdcell"
)

var lib = stdcell.Default()

func TestBinAndRepresentative(t *testing.T) {
	cases := map[float64]int{
		0: 0, 150: 0, 399.9: 0,
		400: 1, 599.9: 1,
		600: 2, 10000: 2, math.Inf(1): 2,
	}
	for spacing, want := range cases {
		if got := Bin(spacing); got != want {
			t.Errorf("Bin(%v) = %d, want %d", spacing, got, want)
		}
	}
	reps := []float64{300, 400, 600}
	for i, want := range reps {
		if got := Representative(i); got != want {
			t.Errorf("Representative(%d) = %v, want %v", i, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Representative(3) did not panic")
		}
	}()
	Representative(3)
}

func TestVersionIndexRoundTrip(t *testing.T) {
	seen := make(map[int]bool)
	for _, v := range AllVersions() {
		i := v.Index()
		if i < 0 || i >= NumVersions {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
		if VersionFromIndex(i) != v {
			t.Fatalf("round trip failed for %+v", v)
		}
	}
	if len(seen) != 81 {
		t.Fatalf("enumerated %d versions, want 81", len(seen))
	}
}

func TestVersionName(t *testing.T) {
	v := Version{LT: 0, LB: 1, RT: 2, RB: 0}
	if v.Name() != "v0120" {
		t.Errorf("Name = %q", v.Name())
	}
}

func TestNPSVersionBinning(t *testing.T) {
	n := NPS{LT: 350, LB: 450, RT: 700, RB: math.Inf(1)}
	v := n.Version()
	if v != (Version{LT: 0, LB: 1, RT: 2, RB: 2}) {
		t.Errorf("Version = %+v", v)
	}
}

func TestClassifyGate(t *testing.T) {
	if got := ClassifyGate(150, 150); got != DeviceDense {
		t.Errorf("both tight = %v", got)
	}
	if got := ClassifyGate(210, 400); got != DeviceIsolated {
		t.Errorf("both open = %v", got)
	}
	if got := ClassifyGate(150, 300); got != DeviceSelfComp {
		t.Errorf("mixed = %v", got)
	}
	// Boundary: exactly contacted-pitch spacing is not dense.
	if got := ClassifyGate(DenseSpacingMax, DenseSpacingMax); got != DeviceIsolated {
		t.Errorf("boundary spacing = %v, want isolated", got)
	}
}

func TestClassifyArcMajorityRule(t *testing.T) {
	d, i, s := DeviceDense, DeviceIsolated, DeviceSelfComp
	cases := []struct {
		devs []DeviceClass
		want corners.ArcClass
	}{
		{[]DeviceClass{i, i, d}, corners.Frown}, // footnote 6's example
		{[]DeviceClass{d, d, i}, corners.Smile},
		{[]DeviceClass{s, s, i}, corners.SelfCompensated},
		{[]DeviceClass{i}, corners.Frown},
		{[]DeviceClass{d}, corners.Smile},
		{[]DeviceClass{s}, corners.SelfCompensated},
		{[]DeviceClass{d, i}, corners.Unclassified},    // tie
		{[]DeviceClass{d, i, s}, corners.Unclassified}, // three-way tie
		{[]DeviceClass{d, d, i, i}, corners.Unclassified},
	}
	for _, c := range cases {
		if got := ClassifyArc(c.devs); got != c.want {
			t.Errorf("ClassifyArc(%v) = %v, want %v", c.devs, got, c.want)
		}
	}
}

func placed(t *testing.T, name string) *place.Placement {
	t.Helper()
	n := netlist.MustGenerate(lib, name)
	p, err := place.Place(n, lib, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExtractNPSEndsOfRow(t *testing.T) {
	p := placed(t, "c432")
	row := p.Rows[0]
	first, last := row[0], row[len(row)-1]
	nFirst := ExtractNPS(p, first)
	if !math.IsInf(nFirst.LT, 1) || !math.IsInf(nFirst.LB, 1) {
		t.Errorf("row-start left nps = %+v, want +Inf", nFirst)
	}
	nLast := ExtractNPS(p, last)
	if !math.IsInf(nLast.RT, 1) || !math.IsInf(nLast.RB, 1) {
		t.Errorf("row-end right nps = %+v, want +Inf", nLast)
	}
}

func TestExtractNPSMatchesGeometry(t *testing.T) {
	p := placed(t, "c432")
	// For every instance with a left neighbor, nps must equal the spacing
	// from its leftmost feature to the neighbor's rightmost feature in the
	// corresponding half.
	for inst := range p.Cells {
		left, _, gap, _ := p.Neighbors(inst)
		if left < 0 {
			continue
		}
		nps := ExtractNPS(p, inst)
		sLT, sLB, _, _ := p.Cells[inst].Cell.BorderClearances()
		_, _, nRT, nRB := p.Cells[left].Cell.BorderClearances()
		if math.Abs(nps.LT-(sLT+gap+nRT)) > 1e-9 {
			t.Fatalf("inst %d LT = %v, want %v", inst, nps.LT, sLT+gap+nRT)
		}
		if math.Abs(nps.LB-(sLB+gap+nRB)) > 1e-9 {
			t.Fatalf("inst %d LB = %v, want %v", inst, nps.LB, sLB+gap+nRB)
		}
	}
}

func TestClassifyRowCoversAllGates(t *testing.T) {
	p := placed(t, "c432")
	for r := range p.Rows {
		classes := ClassifyRow(p, r)
		want := len(p.RowGates(r))
		if len(classes) != want {
			t.Fatalf("row %d classified %d gates, want %d", r, len(classes), want)
		}
	}
}

func TestIsolatedMajority(t *testing.T) {
	// The paper observes that "majority of the devices in the layout are
	// isolated (due to the whitespace distribution or the cell layout
	// itself)". Check our layouts reproduce that.
	p := placed(t, "c880")
	counts := map[DeviceClass]int{}
	for r := range p.Rows {
		for _, c := range ClassifyRow(p, r) {
			counts[c]++
		}
	}
	total := counts[DeviceDense] + counts[DeviceIsolated] + counts[DeviceSelfComp]
	if total == 0 {
		t.Fatal("no devices classified")
	}
	if frac := float64(counts[DeviceIsolated]) / float64(total); frac < 0.5 {
		t.Errorf("isolated fraction = %.2f (dense %d, iso %d, sc %d), want majority",
			frac, counts[DeviceDense], counts[DeviceIsolated], counts[DeviceSelfComp])
	}
	if counts[DeviceSelfComp] == 0 {
		t.Error("no self-compensated devices at all; Fig 5 classes should all occur")
	}
}

func TestNAND3StackClasses(t *testing.T) {
	// NAND3's A-B tight pair in a wide-open placement context: G0 sees
	// open space left and 150 right (self-comp); G1 sees 150/210
	// (self-comp); G2 210/open (isolated).
	cell := lib.MustCell("NAND3X1")
	lines := cell.PolyLines(0)
	sp := make([]struct{ l, r float64 }, len(cell.Gates))
	for i := range cell.Gates {
		gl := cell.GateLines(0)[i]
		l, r := math.Inf(1), math.Inf(1)
		for j, other := range lines {
			if j == i {
				continue
			}
			if other.RightEdge() <= gl.LeftEdge() {
				l = math.Min(l, gl.LeftEdge()-other.RightEdge())
			} else if other.LeftEdge() >= gl.RightEdge() {
				r = math.Min(r, other.LeftEdge()-gl.RightEdge())
			}
		}
		sp[i] = struct{ l, r float64 }{l, r}
	}
	if got := ClassifyGate(sp[0].l, sp[0].r); got != DeviceSelfComp {
		t.Errorf("G0 = %v", got)
	}
	if got := ClassifyGate(sp[1].l, sp[1].r); got != DeviceSelfComp {
		t.Errorf("G1 = %v", got)
	}
	if got := ClassifyGate(sp[2].l, sp[2].r); got != DeviceIsolated {
		t.Errorf("G2 = %v", got)
	}
}
