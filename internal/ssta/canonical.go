package ssta

import (
	"fmt"
	"math"

	"svtiming/internal/context"
	"svtiming/internal/core"
)

// Canonical is the first-order canonical delay form of block-based
// statistical STA (Visweswariah et al., the paper's reference [1] era):
//
//	d = Mean + FocusSens·F + Indep·R
//
// where F ~ N(0,1) is the chip-wide focus variable (fully correlated
// across all gates) and R ~ N(0,1) is this term's own independent
// variable. Sums propagate exactly; max uses Clark's moment matching.
type Canonical struct {
	Mean      float64
	FocusSens float64 // sensitivity to the shared focus variable, ps
	Indep     float64 // sigma of the independent part, ps (>= 0)
}

// Sigma returns the total standard deviation.
func (c Canonical) Sigma() float64 {
	return math.Sqrt(c.FocusSens*c.FocusSens + c.Indep*c.Indep)
}

// Quantile returns the Gaussian q-quantile of the canonical form.
func (c Canonical) Quantile(q float64) float64 {
	return c.Mean + c.Sigma()*probit(q)
}

// Add returns the canonical sum: means and correlated sensitivities add,
// independent parts RSS.
func (c Canonical) Add(o Canonical) Canonical {
	return Canonical{
		Mean:      c.Mean + o.Mean,
		FocusSens: c.FocusSens + o.FocusSens,
		Indep:     math.Hypot(c.Indep, o.Indep),
	}
}

// Max returns Clark's moment-matched approximation of max(c, o),
// re-expressed in canonical form: the mean and variance of the max are
// matched, and the focus sensitivity is the probability-weighted blend of
// the operands' sensitivities (the standard tightness-probability
// linearization).
func Max(a, b Canonical) Canonical {
	sa, sb := a.Sigma(), b.Sigma()
	// Variance of (a − b): correlated parts subtract, independent add.
	theta := math.Sqrt((a.FocusSens-b.FocusSens)*(a.FocusSens-b.FocusSens) +
		a.Indep*a.Indep + b.Indep*b.Indep)
	if theta < 1e-12 {
		// Fully correlated and equal-variance: max is whichever mean wins.
		if a.Mean >= b.Mean {
			return a
		}
		return b
	}
	alpha := (a.Mean - b.Mean) / theta
	tp := phi(alpha) // tightness probability: P(a > b)
	pdf := gauss(alpha)

	mean := a.Mean*tp + b.Mean*(1-tp) + theta*pdf
	second := (a.Mean*a.Mean+sa*sa)*tp + (b.Mean*b.Mean+sb*sb)*(1-tp) +
		(a.Mean+b.Mean)*theta*pdf
	variance := second - mean*mean
	if variance < 0 {
		variance = 0
	}
	sens := a.FocusSens*tp + b.FocusSens*(1-tp)
	indep2 := variance - sens*sens
	if indep2 < 0 {
		// Clamp: keep the matched variance by trimming the correlated part.
		sens = math.Copysign(math.Sqrt(variance), sens)
		indep2 = 0
	}
	return Canonical{Mean: mean, FocusSens: sens, Indep: math.Sqrt(indep2)}
}

// phi is the standard normal CDF.
func phi(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// gauss is the standard normal PDF.
func gauss(x float64) float64 { return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi) }

// probit is the inverse standard normal CDF, computed by bisection on phi
// (robust, dependency-free, and fast enough for reporting quantiles).
func probit(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Bisection on phi: robust and dependency-free; the CDF is monotone.
	lo, hi := -10.0, 10.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if phi(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// BlockBased runs block-based statistical STA on a prepared design under
// the systematic-aware gate-length model: each arc's canonical delay has
// its context-predicted mean, a focus sensitivity signed by the arc
// devices' Bossung classes, and an independent residual. Slews and loads
// are frozen at their nominal-analysis values, and residuals of devices
// shared between arcs of the same cell are treated as arc-independent —
// both standard block-based simplifications.
func BlockBased(f *core.Flow, d *core.Design) (Canonical, error) {
	// Nominal pass for the frozen slews/loads and the per-arc nominal
	// delays.
	nomModel, err := f.NominalContextModel(d)
	if err != nil {
		return Canonical{}, err
	}
	nomRep, err := f.AnalyzeContextual(d, core.Nominal)
	if err != nil {
		return Canonical{}, err
	}
	arcs, err := resolveArcs(f, d)
	if err != nil {
		return Canonical{}, err
	}
	arcIdx := make(map[[2]int]*arcData, len(arcs))
	for i := range arcs {
		arcIdx[[2]int{arcs[i].inst, arcs[i].pin}] = &arcs[i]
	}

	b := f.Budget
	// Linearized focus response: the Monte Carlo model draws u ~ U(-1,1)
	// and shifts CDs by FocusVar·u². Matching the first two moments of u²
	// (mean 1/3, std √(4/45) ≈ 0.298) to s·F with F ~ N(0,1) gives the
	// canonical sensitivity; the mean shift folds into the arc mean.
	const u2Mean = 1.0 / 3.0
	u2Std := math.Sqrt(4.0 / 45.0)
	focusMeanL := b.FocusVar * u2Mean
	focusL := b.FocusVar * u2Std
	residL := residualSigma(Aware, b.TotalVar, b.PitchVar, b.FocusVar)

	order, err := d.Netlist.TopoOrder()
	if err != nil {
		return Canonical{}, err
	}
	arrival := make(map[string]Canonical)
	for _, pi := range d.Netlist.PIs {
		arrival[pi] = Canonical{}
	}

	for _, inst := range order {
		g := d.Netlist.Instances[inst]
		var acc Canonical
		first := true
		for pin, in := range g.Inputs {
			inAT, ok := arrival[in]
			if !ok {
				return Canonical{}, fmt.Errorf("ssta: no arrival for %q", in)
			}
			a := arcIdx[[2]int{inst, pin}]
			if a == nil {
				return Canonical{}, fmt.Errorf("ssta: no arc data for inst %d pin %d", inst, pin)
			}
			// Nominal arc delay at the frozen slew and load.
			dTab, _, err := nomModel.ArcTables(inst, pin)
			if err != nil {
				return Canonical{}, err
			}
			dNom := dTab.At(nomRep.Slew[in], nomRep.Load[g.Output])
			// Delay sensitivity to gate length: delay scales linearly with
			// L, so dD/dL = dNom / Lmean.
			var lMean float64
			for _, l := range a.devL {
				lMean += l
			}
			lMean /= float64(len(a.devL))
			dPerL := dNom / lMean
			// Focus direction: signed mean over the arc's devices.
			var sign float64
			for _, cls := range a.devClass {
				switch cls {
				case context.DeviceDense:
					sign += 1
				case context.DeviceIsolated:
					sign -= 1
				}
			}
			sign /= float64(len(a.devClass))
			arc := Canonical{
				Mean:      dNom + dPerL*focusMeanL*sign,
				FocusSens: dPerL * focusL * sign,
				Indep:     dPerL * residL / math.Sqrt(float64(len(a.devL))),
			}
			at := inAT.Add(arc)
			if first {
				acc = at
				first = false
			} else {
				acc = Max(acc, at)
			}
		}
		arrival[g.Output] = acc
	}

	var out Canonical
	first := true
	for _, po := range d.Netlist.POs {
		at, ok := arrival[po]
		if !ok {
			return Canonical{}, fmt.Errorf("ssta: no arrival at PO %q", po)
		}
		if first {
			out = at
			first = false
		} else {
			out = Max(out, at)
		}
	}
	if first {
		return Canonical{}, fmt.Errorf("ssta: netlist has no primary outputs")
	}
	return out, nil
}
