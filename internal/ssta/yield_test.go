package ssta

import (
	"math"
	"strings"
	"testing"
)

func TestYield(t *testing.T) {
	r := Result{Samples: []float64{10, 20, 30, 40, 50}}
	cases := map[float64]float64{
		5:   0,
		10:  0.2,
		25:  0.4,
		50:  1,
		100: 1,
	}
	for clock, want := range cases {
		if got := r.Yield(clock); math.Abs(got-want) > 1e-12 {
			t.Errorf("Yield(%v) = %v, want %v", clock, got, want)
		}
	}
	if (Result{}).Yield(100) != 0 {
		t.Error("empty result should yield 0")
	}
}

func TestYieldMonotoneProperty(t *testing.T) {
	f, d := setup(t)
	r, err := MonteCarlo(f, d, Aware, Config{Samples: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for c := r.Quantile(0) - 10; c <= r.Quantile(1)+10; c += 5 {
		y := r.Yield(c)
		if y < prev-1e-12 {
			t.Fatalf("yield not monotone at clock %v: %v < %v", c, y, prev)
		}
		prev = y
	}
	if r.Yield(r.Quantile(1)) != 1 {
		t.Error("yield at max sample should be 1")
	}
}

func TestClockForYield(t *testing.T) {
	r := Result{Samples: []float64{10, 20, 30, 40, 50}}
	if got := r.ClockForYield(1); got != 50 {
		t.Errorf("ClockForYield(1) = %v", got)
	}
	if got := r.ClockForYield(0); got != 10 {
		t.Errorf("ClockForYield(0) = %v", got)
	}
	mid := r.ClockForYield(0.5)
	if mid < 10 || mid > 50 {
		t.Errorf("ClockForYield(0.5) = %v", mid)
	}
	// Round trip: yield at the clock-for-yield is at least the target.
	for _, y := range []float64{0.25, 0.5, 0.9} {
		c := r.ClockForYield(y)
		if got := r.Yield(c); got < y-0.21 { // quantile interpolation slack
			t.Errorf("Yield(ClockForYield(%v)) = %v", y, got)
		}
	}
}

func TestYieldCurveAndFormat(t *testing.T) {
	a := Result{Mode: Naive, Samples: []float64{10, 20, 30}}
	b := Result{Mode: Aware, Samples: []float64{5, 15, 25}}
	curve := a.YieldCurve([]float64{10, 30})
	if curve[0] != 1.0/3 || curve[1] != 1 {
		t.Errorf("YieldCurve = %v", curve)
	}
	s := FormatYieldComparison(a, b, 5)
	if !strings.Contains(s, "naive-gaussian") || !strings.Contains(s, "systematic-aware") {
		t.Errorf("FormatYieldComparison = %q", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 6 {
		t.Errorf("unexpected line count:\n%s", s)
	}
}
