package ssta

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCanonicalSigmaAndAdd(t *testing.T) {
	a := Canonical{Mean: 10, FocusSens: 3, Indep: 4}
	if got := a.Sigma(); got != 5 {
		t.Errorf("Sigma = %v", got)
	}
	b := Canonical{Mean: 5, FocusSens: -1, Indep: 3}
	s := a.Add(b)
	if s.Mean != 15 || s.FocusSens != 2 || s.Indep != 5 {
		t.Errorf("Add = %+v", s)
	}
}

func TestQuantileSymmetry(t *testing.T) {
	c := Canonical{Mean: 100, FocusSens: 0, Indep: 10}
	if got := c.Quantile(0.5); math.Abs(got-100) > 1e-6 {
		t.Errorf("median = %v", got)
	}
	hi := c.Quantile(0.8413) // +1 sigma
	if math.Abs(hi-110) > 0.1 {
		t.Errorf("q84 = %v, want ≈ 110", hi)
	}
	lo := c.Quantile(1 - 0.8413)
	if math.Abs((hi-100)-(100-lo)) > 1e-6 {
		t.Errorf("quantiles asymmetric: %v / %v", lo, hi)
	}
}

func TestProbitRoundTrip(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := probit(p)
		if math.Abs(phi(x)-p) > 1e-9 {
			t.Errorf("phi(probit(%v)) = %v", p, phi(x))
		}
	}
	if !math.IsInf(probit(0), -1) || !math.IsInf(probit(1), 1) {
		t.Error("probit endpoints wrong")
	}
}

func TestMaxDominance(t *testing.T) {
	// If a stochastically dominates b by a wide margin, Max ≈ a.
	a := Canonical{Mean: 100, FocusSens: 2, Indep: 3}
	b := Canonical{Mean: 10, FocusSens: 1, Indep: 1}
	m := Max(a, b)
	if math.Abs(m.Mean-a.Mean) > 0.01 || math.Abs(m.Sigma()-a.Sigma()) > 0.01 {
		t.Errorf("Max of dominated pair = %+v, want ≈ %+v", m, a)
	}
}

func TestMaxIdenticalCorrelated(t *testing.T) {
	// max(X, X) = X for perfectly correlated equal operands.
	a := Canonical{Mean: 50, FocusSens: 5, Indep: 0}
	m := Max(a, a)
	if m != a {
		t.Errorf("Max(a, a) = %+v", m)
	}
}

func TestMaxExceedsOperandsProperty(t *testing.T) {
	// E[max(a,b)] >= max(E[a], E[b]) always.
	f := func(m1, m2, s1, s2, f1, f2 float64) bool {
		a := Canonical{Mean: math.Mod(m1, 100), FocusSens: math.Mod(f1, 10),
			Indep: math.Abs(math.Mod(s1, 10))}
		b := Canonical{Mean: math.Mod(m2, 100), FocusSens: math.Mod(f2, 10),
			Indep: math.Abs(math.Mod(s2, 10))}
		m := Max(a, b)
		return m.Mean >= math.Max(a.Mean, b.Mean)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxAgainstMonteCarloMoments(t *testing.T) {
	// Validate Clark's formula against direct sampling for a partially
	// correlated pair.
	a := Canonical{Mean: 100, FocusSens: 6, Indep: 4}
	b := Canonical{Mean: 102, FocusSens: -3, Indep: 5}
	m := Max(a, b)

	// Analytic sampling of the same model.
	const n = 200000
	var sum, sq float64
	rng := newDeterministicRNG()
	for i := 0; i < n; i++ {
		fv := rng.NormFloat64()
		va := a.Mean + a.FocusSens*fv + a.Indep*rng.NormFloat64()
		vb := b.Mean + b.FocusSens*fv + b.Indep*rng.NormFloat64()
		v := math.Max(va, vb)
		sum += v
		sq += v * v
	}
	mean := sum / n
	sigma := math.Sqrt(sq/n - mean*mean)
	if math.Abs(m.Mean-mean) > 0.2 {
		t.Errorf("Clark mean %v vs sampled %v", m.Mean, mean)
	}
	if math.Abs(m.Sigma()-sigma) > 0.2 {
		t.Errorf("Clark sigma %v vs sampled %v", m.Sigma(), sigma)
	}
}

func TestBlockBasedMatchesMonteCarlo(t *testing.T) {
	f, d := setup(t)
	can, err := BlockBased(f, d)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarlo(f, d, Aware, Config{Samples: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(can.Mean-mc.Mean) / mc.Mean; rel > 0.01 {
		t.Errorf("block-based mean %v vs MC %v (%.2f%%)", can.Mean, mc.Mean, 100*rel)
	}
	if rel := math.Abs(can.Sigma()-mc.Std) / mc.Std; rel > 0.30 {
		t.Errorf("block-based sigma %v vs MC %v (%.0f%%)", can.Sigma(), mc.Std, 100*rel)
	}
	if can.Sigma() <= 0 {
		t.Error("degenerate canonical result")
	}
	// The chip-correlated focus component must survive propagation — it
	// cannot average out along paths.
	if math.Abs(can.FocusSens) < can.Indep/4 {
		t.Errorf("focus sensitivity %v implausibly small vs independent %v",
			can.FocusSens, can.Indep)
	}
}

// newDeterministicRNG returns a seeded normal-variate source for the Clark
// validation test.
func newDeterministicRNG() *detRNG { return &detRNG{state: 12345} }

type detRNG struct {
	state uint64
	spare float64
	has   bool
}

// NormFloat64 produces standard normal variates via Box-Muller over a
// simple xorshift stream (deterministic across platforms).
func (r *detRNG) NormFloat64() float64 {
	if r.has {
		r.has = false
		return r.spare
	}
	u1 := r.uniform()
	u2 := r.uniform()
	m := math.Sqrt(-2 * math.Log(u1))
	r.spare = m * math.Sin(2*math.Pi*u2)
	r.has = true
	return m * math.Cos(2*math.Pi*u2)
}

func (r *detRNG) uniform() float64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	// Map to (0,1).
	return (float64(r.state>>11) + 0.5) / float64(1<<53)
}
