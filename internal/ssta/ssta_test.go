package ssta

import (
	"math"
	"sync"
	"testing"

	"svtiming/internal/core"
)

var (
	once   sync.Once
	flow   *core.Flow
	design *core.Design
)

func setup(t *testing.T) (*core.Flow, *core.Design) {
	t.Helper()
	once.Do(func() {
		f, err := core.NewFlow()
		if err != nil {
			t.Fatalf("NewFlow: %v", err)
		}
		d, err := f.PrepareDesign("c432")
		if err != nil {
			t.Fatalf("PrepareDesign: %v", err)
		}
		flow, design = f, d
	})
	if flow == nil {
		t.Fatal("setup failed earlier")
	}
	return flow, design
}

func TestMonteCarloBasics(t *testing.T) {
	f, d := setup(t)
	r, err := MonteCarlo(f, d, Naive, Config{Samples: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples) != 60 {
		t.Fatalf("got %d samples", len(r.Samples))
	}
	for i := 1; i < len(r.Samples); i++ {
		if r.Samples[i] < r.Samples[i-1] {
			t.Fatal("samples not sorted")
		}
	}
	if r.Std <= 0 || math.IsNaN(r.Std) {
		t.Errorf("std = %v", r.Std)
	}
	if r.Mean < r.Samples[0] || r.Mean > r.Samples[len(r.Samples)-1] {
		t.Errorf("mean %v outside sample range", r.Mean)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	f, d := setup(t)
	a, err := MonteCarlo(f, d, Aware, Config{Samples: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(f, d, Aware, Config{Samples: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	c, err := MonteCarlo(f, d, Aware, Config{Samples: 40, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.Samples[0] == c.Samples[0] && a.Samples[20] == c.Samples[20] {
		t.Error("different seeds produced identical samples")
	}
}

func TestAwareRecentersBelowNaive(t *testing.T) {
	// The systematic component makes printed gates shorter than drawn in
	// this process, so the aware mean must sit below the naive mean
	// (which is centered on drawn length).
	f, d := setup(t)
	naive, err := MonteCarlo(f, d, Naive, Config{Samples: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := MonteCarlo(f, d, Aware, Config{Samples: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if aware.Mean >= naive.Mean {
		t.Errorf("aware mean %v not below naive %v", aware.Mean, naive.Mean)
	}
	// Real hardware beats the traditional worst case (§6: "ASIC hardware
	// always performs better than traditional STA predicts"). The best
	// case is no true bound once the systematic short-printing shift is
	// modeled, so only the WC side is asserted.
	cmp, err := f.Compare(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if aware.Quantile(1) > cmp.TradWC {
		t.Errorf("aware max %v exceeds the traditional WC %v", aware.Quantile(1), cmp.TradWC)
	}
}

func TestQuantile(t *testing.T) {
	r := Result{Samples: []float64{10, 20, 30, 40, 50}}
	if got := r.Quantile(0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := r.Quantile(1); got != 50 {
		t.Errorf("q1 = %v", got)
	}
	if got := r.Quantile(0.5); got != 30 {
		t.Errorf("median = %v", got)
	}
	if got := r.Quantile(0.25); got != 20 {
		t.Errorf("q25 = %v", got)
	}
	if got := (Result{}).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v", got)
	}
	if s := r.Spread99(); s <= 0 || s > 40 {
		t.Errorf("Spread99 = %v", s)
	}
}

func TestConfigValidation(t *testing.T) {
	f, d := setup(t)
	if _, err := MonteCarlo(f, d, Naive, Config{Samples: 1}); err == nil {
		t.Error("single-sample run accepted")
	}
}

func TestModeString(t *testing.T) {
	if Naive.String() == Aware.String() {
		t.Error("mode names collide")
	}
}
