// Package ssta is the statistical-timing extension the paper's §6 lists as
// future work: Monte Carlo timing with "more realistic gate length
// distribution based on iso-dense attributes and proximity spatial
// information, as opposed to the simplistic Gaussian distribution".
//
// Two gate-length models are compared:
//
//   - Naive: every gate length is an independent Gaussian around the drawn
//     value covering the full variation budget — the strawman the paper
//     criticizes (it ignores that half the "variation" is systematic).
//
//   - Aware: each gate is centered on its context-predicted printed CD;
//     a chip-wide defocus random variable moves dense and isolated gates
//     in opposite directions (perfectly correlated across the chip, as
//     focus is); only the residual random component remains independent.
package ssta

import (
	stdctx "context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"svtiming/internal/context"
	"svtiming/internal/core"
	"svtiming/internal/liberty"
	"svtiming/internal/par"
	"svtiming/internal/sta"
)

// Mode selects the gate-length distribution.
type Mode int

const (
	// Naive treats the full budget as independent Gaussian noise.
	Naive Mode = iota
	// Aware uses the systematic decomposition: predicted nominal,
	// correlated focus, independent residual.
	Aware
)

func (m Mode) String() string {
	if m == Naive {
		return "naive-gaussian"
	}
	return "systematic-aware"
}

// Config controls a Monte Carlo run.
type Config struct {
	Samples int   // number of Monte Carlo samples (default 200)
	Seed    int64 // PRNG seed (default 1)

	// Workers bounds the trial worker pool. 0 inherits the flow's
	// parallelism; 1 forces serial. Each trial draws from its own
	// deterministically-derived PRNG stream (see sampleSeed), so the
	// sampled distribution is bit-identical at every pool size.
	Workers int
}

// Result summarizes the sampled critical-delay distribution.
type Result struct {
	Mode    Mode
	Samples []float64 // sorted critical delays, ps
	Mean    float64
	Std     float64
}

// Quantile returns the q-quantile (0..1) of the sampled distribution.
func (r Result) Quantile(q float64) float64 {
	if len(r.Samples) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return r.Samples[0]
	}
	if q >= 1 {
		return r.Samples[len(r.Samples)-1]
	}
	pos := q * float64(len(r.Samples)-1)
	i := int(pos)
	f := pos - float64(i)
	return r.Samples[i]*(1-f) + r.Samples[i+1]*f
}

// Spread99 returns the 0.5%..99.5% spread, the statistical analogue of the
// BC↔WC corner spread.
func (r Result) Spread99() float64 { return r.Quantile(0.995) - r.Quantile(0.005) }

// MonteCarlo samples the critical delay distribution of a prepared design
// under the chosen gate-length model.
func MonteCarlo(f *core.Flow, d *core.Design, mode Mode, cfg Config) (Result, error) {
	if cfg.Samples == 0 {
		cfg.Samples = 200
	}
	if cfg.Samples < 2 {
		return Result{}, fmt.Errorf("ssta: need at least 2 samples")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = f.Workers()
	}

	// Pre-resolve the per-arc data: base tables, devices, per-device
	// nominal lengths and classes.
	arcs, err := resolveArcs(f, d)
	if err != nil {
		return Result{}, err
	}

	b := f.Budget
	sigmaResidual := residualSigma(mode, b.TotalVar, b.PitchVar, b.FocusVar)

	// Trials fan out over the worker pool. Each trial seeds a private PRNG
	// from (cfg.Seed, trial index), so the draw sequence of trial s does
	// not depend on which worker runs it or what ran before it — the
	// property that makes the parallel distribution bit-identical to the
	// serial one.
	samples, err := par.Map(nil, workers, cfg.Samples,
		func(_ stdctx.Context, s int) (float64, error) {
			rng := rand.New(rand.NewSource(sampleSeed(cfg.Seed, s)))
			// Chip-wide defocus excursion: uniform in [-1, 1] of the rated
			// focus window (focus drifts span the window, they are not
			// tightly centered), squared response per the Bossung quadratic.
			zFrac := rng.Float64()*2 - 1
			focusShift := b.FocusVar * zFrac * zFrac

			model := &sampleModel{arcs: arcs, drawnL: f.Timing.DrawnL}
			model.scale = make([]float64, len(arcs))
			for ai := range arcs {
				a := &arcs[ai]
				var sumL float64
				for di := range a.devL {
					var l float64
					switch mode {
					case Naive:
						l = b.LNom + rng.NormFloat64()*sigmaResidual
					case Aware:
						l = a.devL[di] + rng.NormFloat64()*sigmaResidual
						switch a.devClass[di] {
						case context.DeviceDense:
							l += focusShift // dense thickens out of focus
						case context.DeviceIsolated:
							l -= focusShift // isolated thins out of focus
						}
					}
					sumL += l
				}
				model.scale[ai] = (sumL / float64(len(a.devL))) / f.Timing.DrawnL
			}
			rep, err := sta.Analyze(d.Netlist, f.Lib, model, f.StaOptions(d))
			if err != nil {
				return 0, err
			}
			return rep.MaxDelay, nil
		})
	if err != nil {
		return Result{}, err
	}
	res := Result{Mode: mode, Samples: samples}
	sort.Float64s(res.Samples)
	var sum, sq float64
	for _, v := range res.Samples {
		sum += v
	}
	res.Mean = sum / float64(len(res.Samples))
	for _, v := range res.Samples {
		sq += (v - res.Mean) * (v - res.Mean)
	}
	res.Std = math.Sqrt(sq / float64(len(res.Samples)-1))
	return res, nil
}

// sampleSeed derives the private PRNG seed of trial s from the run seed —
// a splitmix64 finalizer over (base, s), so nearby trial indices and seeds
// land in statistically unrelated streams. Deriving per-trial streams
// (rather than sharing one sequential stream) is what decouples each
// trial's draws from execution order.
func sampleSeed(base int64, s int) int64 {
	z := uint64(base) + uint64(s+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// residualSigma maps the ± budget components to a Gaussian sigma. The ±
// range is read as a 3-sigma excursion.
func residualSigma(mode Mode, total, pitch, focus float64) float64 {
	if mode == Naive {
		return total / 3
	}
	r := total - pitch - focus
	if r < 0 {
		r = 0
	}
	return r / 3
}

// arcData is the pre-resolved per-(instance,pin) information.
type arcData struct {
	inst, pin int
	delay     liberty.Table
	outSlew   liberty.Table
	devL      []float64 // context-predicted printed length per device
	devClass  []context.DeviceClass
}

func resolveArcs(f *core.Flow, d *core.Design) ([]arcData, error) {
	// Device classes per row.
	classByRow := make([]map[[2]int]context.DeviceClass, len(d.Placement.Rows))
	for r := range d.Placement.Rows {
		classByRow[r] = context.ClassifyRow(d.Placement, r)
	}
	var out []arcData
	for i, g := range d.Netlist.Instances {
		entry, err := f.Timing.Entry(g.Cell)
		if err != nil {
			return nil, err
		}
		cell := f.Lib.MustCell(g.Cell)
		row := d.Placement.Cells[i].Row
		version := d.Version[i].Index()
		for pin, pinName := range cell.Inputs {
			ai, err := entry.ArcIndex(pinName)
			if err != nil {
				return nil, err
			}
			arc := entry.Arcs[ai]
			a := arcData{
				inst: i, pin: pin,
				delay:   arc.Delay,
				outSlew: arc.OutSlew,
			}
			for _, dev := range arc.Devices {
				a.devL = append(a.devL, entry.VersionGateCD[version][dev])
				a.devClass = append(a.devClass, classByRow[row][[2]int{i, dev}])
			}
			out = append(out, a)
		}
	}
	return out, nil
}

// sampleModel adapts one Monte Carlo sample's per-arc length scales to the
// sta.Model interface.
type sampleModel struct {
	arcs   []arcData
	scale  []float64
	drawnL float64
	// index lookup built lazily: (inst,pin) → arc position.
	idx map[[2]int]int
}

func (m *sampleModel) ArcTables(inst, pin int) (liberty.Table, liberty.Table, error) {
	if m.idx == nil {
		m.idx = make(map[[2]int]int, len(m.arcs))
		for i, a := range m.arcs {
			m.idx[[2]int{a.inst, a.pin}] = i
		}
	}
	i, ok := m.idx[[2]int{inst, pin}]
	if !ok {
		return liberty.Table{}, liberty.Table{}, fmt.Errorf("ssta: no arc for inst %d pin %d", inst, pin)
	}
	a := m.arcs[i]
	return a.delay.Scale(m.scale[i]), a.outSlew, nil
}
