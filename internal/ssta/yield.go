package ssta

import (
	"fmt"
	"sort"
	"strings"
)

// Yield returns the fraction of Monte Carlo samples meeting the given
// clock period (ps) — the parametric-yield estimate of the paper's
// reference [4] applied to the sampled critical-delay distribution.
func (r Result) Yield(clockPS float64) float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	// Samples are sorted; binary search for the first sample > clock.
	i := sort.SearchFloat64s(r.Samples, clockPS)
	// Include samples equal to the clock (SearchFloat64s returns the
	// first index with Samples[i] >= clock).
	for i < len(r.Samples) && r.Samples[i] <= clockPS {
		i++
	}
	return float64(i) / float64(len(r.Samples))
}

// ClockForYield returns the smallest clock period achieving the target
// yield (0..1].
func (r Result) ClockForYield(yield float64) float64 {
	if yield <= 0 {
		return r.Quantile(0)
	}
	if yield >= 1 {
		return r.Quantile(1)
	}
	return r.Quantile(yield)
}

// YieldCurve tabulates yield at the given clock periods.
func (r Result) YieldCurve(clocks []float64) []float64 {
	out := make([]float64, len(clocks))
	for i, c := range clocks {
		out[i] = r.Yield(c)
	}
	return out
}

// FormatYieldComparison renders two models' yield curves over a shared
// clock sweep spanning both distributions.
func FormatYieldComparison(a, b Result, points int) string {
	if points < 2 {
		points = 9
	}
	lo := min(a.Quantile(0), b.Quantile(0))
	hi := max(a.Quantile(1), b.Quantile(1))
	var sb strings.Builder
	fmt.Fprintf(&sb, "%12s %16s %18s\n", "clock (ps)", a.Mode.String(), b.Mode.String())
	for i := 0; i < points; i++ {
		c := lo + (hi-lo)*float64(i)/float64(points-1)
		fmt.Fprintf(&sb, "%12.1f %15.1f%% %17.1f%%\n",
			c, 100*a.Yield(c), 100*b.Yield(c))
	}
	return sb.String()
}
