package fourier

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFT2Impulse(t *testing.T) {
	const nx, ny = 8, 4
	data := make([]complex128, nx*ny)
	data[0] = 1
	FFT2(data, nx, ny)
	for i, v := range data {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFT2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const nx, ny = 16, 8
	data := make([]complex128, nx*ny)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	orig := append([]complex128(nil), data...)
	FFT2(data, nx, ny)
	IFFT2(data, nx, ny)
	for i := range data {
		if cmplx.Abs(data[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestFFT2Separable(t *testing.T) {
	// A rank-1 signal f(x)·g(y) transforms to F(kx)·G(ky).
	const nx, ny = 8, 8
	f := make([]complex128, nx)
	g := make([]complex128, ny)
	rng := rand.New(rand.NewSource(3))
	for i := range f {
		f[i] = complex(rng.NormFloat64(), 0)
		g[i] = complex(rng.NormFloat64(), 0)
	}
	data := make([]complex128, nx*ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			data[y*nx+x] = f[x] * g[y]
		}
	}
	FFT2(data, nx, ny)
	F := append([]complex128(nil), f...)
	G := append([]complex128(nil), g...)
	FFT(F)
	FFT(G)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			want := F[x] * G[y]
			if cmplx.Abs(data[y*nx+x]-want) > 1e-9 {
				t.Fatalf("separability broken at (%d,%d)", x, y)
			}
		}
	}
}

func TestFFT2PanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("size mismatch accepted")
		}
	}()
	FFT2(make([]complex128, 10), 4, 4)
}
