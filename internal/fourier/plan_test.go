package fourier

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// The plans are checked against naiveDFT from fft_test.go, the O(n²)
// textbook transform.
func TestPlanMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		FFT(got)
		scale := math.Sqrt(float64(n))
		for k := range got {
			if d := cmplx.Abs(got[k] - want[k]); d > 1e-9*scale {
				t.Fatalf("n=%d: FFT bin %d differs from naive DFT by %g", n, k, d)
			}
		}
		// Round trip through the inverse plan must reproduce the input.
		IFFT(got)
		for i := range got {
			if d := cmplx.Abs(got[i] - x[i]); d > 1e-12 {
				t.Fatalf("n=%d: IFFT(FFT(x))[%d] off by %g", n, i, d)
			}
		}
	}
}

func TestPlanIsShared(t *testing.T) {
	if PlanFor(64) != PlanFor(64) {
		t.Fatal("PlanFor(64) returned distinct plans for the same size")
	}
	if PlanFor(64) == PlanFor(128) {
		t.Fatal("PlanFor returned one plan for two sizes")
	}
}

func TestPlanRejectsBadLengths(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("PlanFor(12)", func() { PlanFor(12) })
	mustPanic("PlanFor(0)", func() { PlanFor(0) })
	mustPanic("size mismatch", func() { PlanFor(8).Forward(make([]complex128, 4)) })
	mustPanic("FFTRealInto mismatch", func() { FFTRealInto(make([]complex128, 8), make([]float64, 4)) })
}

func TestFFTRealIntoMatchesFFTReal(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := FFTReal(x)
	dst := make([]complex128, len(x))
	// Poison dst: Into must fully overwrite it.
	for i := range dst {
		dst[i] = complex(math.NaN(), math.NaN())
	}
	FFTRealInto(dst, x)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("bin %d: FFTRealInto %v != FFTReal %v", i, dst[i], want[i])
		}
	}
}

func TestPoolsAreNilSafeAndZeroed(t *testing.T) {
	ReleaseComplex(nil)
	ReleaseFloat(nil)

	cp := AcquireComplex(32)
	(*cp)[7] = 3 + 4i
	ReleaseComplex(cp)
	cp2 := AcquireComplex(32)
	defer ReleaseComplex(cp2)
	for i, v := range *cp2 {
		if v != 0 {
			t.Fatalf("recycled complex buffer not zeroed at %d: %v", i, v)
		}
	}

	fp := AcquireFloat(32)
	(*fp)[3] = 9
	ReleaseFloat(fp)
	fp2 := AcquireFloat(32)
	defer ReleaseFloat(fp2)
	for i, v := range *fp2 {
		if v != 0 {
			t.Fatalf("recycled float buffer not zeroed at %d: %v", i, v)
		}
	}
}

// TestPlanAndPoolConcurrency exercises concurrent first-build of plans and
// concurrent pool churn; run with -race it checks the layer is race-clean.
func TestPlanAndPoolConcurrency(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 50; iter++ {
				n := 1 << (3 + rng.Intn(5))
				bp := AcquireComplex(n)
				b := *bp
				for i := range b {
					b[i] = complex(rng.NormFloat64(), 0)
				}
				FFT(b)
				IFFT(b)
				ReleaseComplex(bp)
				op := AcquireFloat(n)
				ReleaseFloat(op)
			}
		}(int64(100 + w))
	}
	wg.Wait()
}

func BenchmarkFFTRealInto(b *testing.B) {
	x := make([]float64, 4096)
	for i := range x {
		x[i] = float64(i % 7)
	}
	dst := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFTRealInto(dst, x)
	}
}
