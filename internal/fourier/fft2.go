package fourier

// FFT2 computes the in-place 2-D forward DFT of a row-major nx×ny array
// (x is the fastest-varying index): first each row, then each column.
// Both dimensions must be powers of two.
func FFT2(data []complex128, nx, ny int) {
	fft2(data, nx, ny, false)
}

// IFFT2 computes the in-place 2-D inverse DFT including the 1/(nx·ny)
// normalization.
func IFFT2(data []complex128, nx, ny int) {
	fft2(data, nx, ny, true)
	n := complex(float64(nx*ny), 0)
	for i := range data {
		data[i] /= n
	}
}

func fft2(data []complex128, nx, ny int, inverse bool) {
	if len(data) != nx*ny {
		panic("fourier: FFT2 size mismatch")
	}
	rows, cols := PlanFor(nx), PlanFor(ny)
	// Rows.
	for y := 0; y < ny; y++ {
		rows.raw(data[y*nx:(y+1)*nx], inverse)
	}
	// Columns, via a pooled scratch buffer.
	colp := AcquireComplex(ny)
	defer ReleaseComplex(colp)
	col := *colp
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			col[y] = data[y*nx+x]
		}
		cols.raw(col, inverse)
		for y := 0; y < ny; y++ {
			data[y*nx+x] = col[y]
		}
	}
}
