package fourier

import "sync"

// Scratch-buffer pools, one per (type, length). The imaging hot path
// transforms the same one or two sizes millions of times per run; pooling
// the complex spectrum/field buffers and the real accumulators removes
// every per-call allocation from that path. The API trades in *[]T so the
// same pointer round-trips through sync.Pool without re-boxing a slice
// header on each Put (a pointer stores inline in an interface; a slice
// header does not).
//
// Acquire returns a zeroed buffer; Release(nil) is a no-op so callers can
// defer unconditionally. Buffers must not be used after Release.

var complexPools sync.Map // int -> *sync.Pool of *[]complex128
var floatPools sync.Map   // int -> *sync.Pool of *[]float64

// AcquireComplex returns a zeroed complex buffer of length n. Release it
// with ReleaseComplex when done.
func AcquireComplex(n int) *[]complex128 {
	p, ok := complexPools.Load(n)
	if !ok {
		p, _ = complexPools.LoadOrStore(n, &sync.Pool{New: func() any {
			b := make([]complex128, n)
			return &b
		}})
	}
	bp := p.(*sync.Pool).Get().(*[]complex128)
	b := *bp
	for i := range b {
		b[i] = 0
	}
	return bp
}

// ReleaseComplex returns a buffer obtained from AcquireComplex to its
// pool. Releasing nil is a no-op.
func ReleaseComplex(bp *[]complex128) {
	if bp == nil {
		return
	}
	if p, ok := complexPools.Load(len(*bp)); ok {
		p.(*sync.Pool).Put(bp)
	}
}

// AcquireFloat returns a zeroed real buffer of length n. Release it with
// ReleaseFloat when done.
func AcquireFloat(n int) *[]float64 {
	p, ok := floatPools.Load(n)
	if !ok {
		p, _ = floatPools.LoadOrStore(n, &sync.Pool{New: func() any {
			b := make([]float64, n)
			return &b
		}})
	}
	bp := p.(*sync.Pool).Get().(*[]float64)
	b := *bp
	for i := range b {
		b[i] = 0
	}
	return bp
}

// ReleaseFloat returns a buffer obtained from AcquireFloat to its pool.
// Releasing nil is a no-op.
func ReleaseFloat(bp *[]float64) {
	if bp == nil {
		return
	}
	if p, ok := floatPools.Load(len(*bp)); ok {
		p.(*sync.Pool).Put(bp)
	}
}
