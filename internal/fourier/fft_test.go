package fourier

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 12, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin 3 transforms to N at bin 3, 0 elsewhere.
	const n = 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(i)/n))
	}
	FFT(x)
	for k, v := range x {
		want := complex(0, 0)
		if k == 3 {
			want = complex(n, 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Errorf("bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 32
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := naiveDFT(x)
	got := append([]complex128(nil), x...)
	FFT(got)
	for k := range want {
		if cmplx.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("bin %d: FFT %v, naive %v", k, got[k], want[k])
		}
	}
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for m := 0; m < n; m++ {
			s += x[m] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*m)/float64(n)))
		}
		out[k] = s
	}
	return out
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FFT on length 12 did not panic")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestIFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(5)) // 8..128
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		FFT(y)
		IFFT(y)
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Σ|x|² == (1/N)·Σ|X|² for any signal.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 64
		x := make([]float64, n)
		var te float64
		for i := range x {
			x[i] = rng.NormFloat64()
			te += x[i] * x[i]
		}
		spec := FFTReal(x)
		var fe float64
		for _, v := range spec {
			fe += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(te-fe/n) < 1e-7*math.Max(1, te)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFreqIndex(t *testing.T) {
	// 8 samples at dx=0.5: df = 1/(8*0.5) = 0.25.
	if got := FreqIndex(0, 8, 0.5); got != 0 {
		t.Errorf("FreqIndex(0) = %v", got)
	}
	if got := FreqIndex(1, 8, 0.5); got != 0.25 {
		t.Errorf("FreqIndex(1) = %v", got)
	}
	if got := FreqIndex(7, 8, 0.5); got != -0.25 {
		t.Errorf("FreqIndex(7) = %v, want -0.25 (negative frequency)", got)
	}
	if got := FreqIndex(4, 8, 0.5); got != -1.0 {
		t.Errorf("FreqIndex(4) = %v, want -1 (Nyquist)", got)
	}
}

func TestConvolveDelta(t *testing.T) {
	// Convolving with a shifted delta shifts the signal circularly.
	a := []float64{1, 2, 3, 4, 0, 0, 0, 0}
	d := []float64{0, 1, 0, 0, 0, 0, 0, 0}
	got := Convolve(a, d)
	want := []float64{0, 1, 2, 3, 4, 0, 0, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("Convolve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%17), 0)
	}
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFT(buf)
	}
}
