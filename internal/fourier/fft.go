// Package fourier implements the discrete Fourier transforms needed by the
// lithography simulator. The standard library has no FFT, so a radix-2
// Cooley-Tukey implementation is provided, together with helpers for real
// signals and frequency-axis bookkeeping.
package fourier

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT computes the in-place forward discrete Fourier transform of x:
//
//	X[k] = Σ_n x[n]·exp(-2πi·kn/N)
//
// The length of x must be a power of two; FFT panics otherwise (a programming
// error, since callers control buffer sizes).
func FFT(x []complex128) {
	fftInPlace(x, false)
}

// IFFT computes the in-place inverse DFT of x, including the 1/N
// normalization, so IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	fftInPlace(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fourier: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// FFTReal transforms a real signal, returning a freshly allocated complex
// spectrum of the same (power-of-two) length.
func FFTReal(x []float64) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	FFT(out)
	return out
}

// FreqIndex maps spectral bin k (0..n-1) of an n-point DFT with sample
// spacing dx to its signed spatial frequency in cycles per unit length. The
// Nyquist bin (k = n/2 for even n) is reported as negative, matching the
// usual fftfreq convention.
func FreqIndex(k, n int, dx float64) float64 {
	if 2*k >= n {
		k -= n
	}
	return float64(k) / (float64(n) * dx)
}

// Convolve returns the circular convolution of a and b (equal power-of-two
// lengths) computed via the FFT.
func Convolve(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("fourier: Convolve length mismatch")
	}
	fa := FFTReal(a)
	fb := FFTReal(b)
	for i := range fa {
		fa[i] *= fb[i]
	}
	IFFT(fa)
	out := make([]float64, len(a))
	for i, v := range fa {
		out[i] = real(v)
	}
	return out
}
