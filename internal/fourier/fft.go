// Package fourier implements the discrete Fourier transforms needed by the
// lithography simulator. The standard library has no FFT, so a radix-2
// Cooley-Tukey implementation is provided, together with helpers for real
// signals and frequency-axis bookkeeping.
package fourier

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT computes the in-place forward discrete Fourier transform of x:
//
//	X[k] = Σ_n x[n]·exp(-2πi·kn/N)
//
// The length of x must be a power of two; FFT panics otherwise (a programming
// error, since callers control buffer sizes). The transform executes a cached
// Plan, so repeated calls at one size pay no twiddle recomputation.
func FFT(x []complex128) {
	PlanFor(len(x)).Forward(x)
}

// IFFT computes the in-place inverse DFT of x, including the 1/N
// normalization, so IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	PlanFor(len(x)).Inverse(x)
}

// FFTReal transforms a real signal, returning a freshly allocated complex
// spectrum of the same (power-of-two) length. Hot paths that want to avoid
// the allocation should use FFTRealInto with a pooled buffer.
func FFTReal(x []float64) []complex128 {
	out := make([]complex128, len(x))
	FFTRealInto(out, x)
	return out
}

// FFTRealInto transforms the real signal x into the caller-provided
// spectrum buffer dst (equal power-of-two lengths), allocating nothing.
func FFTRealInto(dst []complex128, x []float64) {
	if len(dst) != len(x) {
		panic("fourier: FFTRealInto length mismatch")
	}
	for i, v := range x {
		dst[i] = complex(v, 0)
	}
	FFT(dst)
}

// FreqIndex maps spectral bin k (0..n-1) of an n-point DFT with sample
// spacing dx to its signed spatial frequency in cycles per unit length. The
// Nyquist bin (k = n/2 for even n) is reported as negative, matching the
// usual fftfreq convention.
func FreqIndex(k, n int, dx float64) float64 {
	if 2*k >= n {
		k -= n
	}
	return float64(k) / (float64(n) * dx)
}

// Convolve returns the circular convolution of a and b (equal power-of-two
// lengths) computed via the FFT.
func Convolve(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("fourier: Convolve length mismatch")
	}
	fap := AcquireComplex(len(a))
	fbp := AcquireComplex(len(b))
	defer ReleaseComplex(fap)
	defer ReleaseComplex(fbp)
	fa, fb := *fap, *fbp
	FFTRealInto(fa, a)
	FFTRealInto(fb, b)
	for i := range fa {
		fa[i] *= fb[i]
	}
	IFFT(fa)
	out := make([]float64, len(a))
	for i, v := range fa {
		out[i] = real(v)
	}
	return out
}
