// Ablation benchmarks for the design choices DESIGN.md calls out: how the
// aware flow consumes context (§5 variants), the OPC recipe's effect on
// the systematic residual, the non-gate-length corner component's dilution
// of the headline reduction, and the §6 exposure-dose sensitivity.
package svtiming_test

import (
	"fmt"
	"testing"

	"svtiming/internal/core"
	"svtiming/internal/expt"
	"svtiming/internal/liberty"
	"svtiming/internal/opc"
	"svtiming/internal/opt"
	"svtiming/internal/process"
	"svtiming/internal/seq"
	"svtiming/internal/ssta"
	"svtiming/internal/stdcell"
)

// BenchmarkVariantAblation compares the 81-version library against the §5
// parameterized model and the §5 simplified (no-border) fallback.
func BenchmarkVariantAblation(b *testing.B) {
	f := sharedFlow(b)
	for i := 0; i < b.N; i++ {
		rows, err := expt.VariantAblation(f, "c432")
		if err != nil {
			b.Fatal(err)
		}
		printFirst("variants", "== §5 variant ablation (c432) ==\n"+
			expt.FormatVariantAblation(rows))
		// Sanity: parametric tracks binned; simplified loses most benefit
		// on small-cell libraries (§5's own caveat).
		if rows[2].ReductionPct() > rows[0].ReductionPct()/2 {
			b.Fatalf("simplified variant unexpectedly strong: %+v", rows)
		}
	}
}

// BenchmarkOPCRecipeAblation contrasts the production-like Standard recipe
// with the converged Ideal recipe: both retain a systematic through-pitch
// residual (the model-fidelity floor), Standard adds iteration-budget
// noise on top.
func BenchmarkOPCRecipeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wafer := process.Nominal90nm()
		model := opc.ModelProcess(wafer)
		std := opc.BuildPitchTable(nil, wafer, opc.Standard(model), stdcell.DrawnCD, core.DefaultPitchSweep, 1)
		model.ClearCache()
		wafer.ClearCache()
		ideal := opc.BuildPitchTable(nil, wafer, opc.Ideal(model), stdcell.DrawnCD, core.DefaultPitchSweep, 1)
		printFirst("recipes", fmt.Sprintf(
			"== OPC recipe ablation ==\nstandard recipe residual span: %.2f nm\nideal recipe residual span:    %.2f nm\n"+
				"even converged OPC keeps a systematic residual (model fidelity floor)",
			std.Span(), ideal.Span()))
		if ideal.Span() <= 0 {
			b.Fatal("ideal recipe erased the systematic residual entirely")
		}
	}
}

// BenchmarkBudgetSweep shows how the non-gate-length corner component
// dilutes the headline uncertainty reduction: with no other-parameter
// variation the reduction approaches the per-arc theoretical values; the
// larger the non-L share, the smaller the benefit.
func BenchmarkBudgetSweep(b *testing.B) {
	f := sharedFlow(b)
	d, err := f.PrepareDesign("c432")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var lines string
		prev := 101.0
		for _, frac := range []float64{0, 0.04, 0.08, 0.12} {
			fc := *f
			fc.Budget.OtherDelayFrac = frac
			cmp, err := fc.Compare(nil, d)
			if err != nil {
				b.Fatal(err)
			}
			lines += fmt.Sprintf("other-parameter delay ±%.0f%%: reduction %5.1f%%\n",
				100*frac, cmp.ReductionPct())
			if cmp.ReductionPct() >= prev {
				b.Fatalf("reduction did not fall as the non-L share grew")
			}
			prev = cmp.ReductionPct()
		}
		printFirst("budget", "== corner budget sweep (c432) ==\n"+lines)
	}
}

// BenchmarkDoseClassification runs the §6 exposure study: smile/frown
// boundary versus dose and the induced device-class flips.
func BenchmarkDoseClassification(b *testing.B) {
	f := sharedFlow(b)
	for i := 0; i < b.N; i++ {
		study, err := expt.DoseClassification(f, "c432", []float64{0.9, 1.0, 1.1})
		if err != nil {
			b.Fatal(err)
		}
		printFirst("dose", "== §6 dose study (c432) ==\n"+study.String())
	}
}

// BenchmarkProcessWindow runs the dense+iso overlapping process-window
// analysis.
func BenchmarkProcessWindow(b *testing.B) {
	f := sharedFlow(b)
	zs := []float64{-300, -200, -100, 0, 100, 200, 300}
	doses := []float64{0.90, 0.95, 1.0, 1.05, 1.10}
	for i := 0; i < b.N; i++ {
		ws, err := expt.ProcessWindowStudy(nil, f.Wafer, 0.10, zs, doses, f.Workers())
		if err != nil {
			b.Fatal(err)
		}
		printFirst("window", "== overlapping process window ==\n"+expt.FormatWindowStudy(ws))
	}
}

// BenchmarkLineEndShortening runs the 2-D line-end experiment: bare
// pullback versus hammerhead-corrected.
func BenchmarkLineEndShortening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bare, err := opc.DefaultLineEnd().Run()
		if err != nil {
			b.Fatal(err)
		}
		cfg := opc.DefaultLineEnd()
		cfg.HammerWidth = 110
		cfg.HammerLength = 80
		capped, err := cfg.Run()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("lineend", fmt.Sprintf(
			"== 2-D line-end study ==\nbare pullback:       %.1f nm\nhammerhead pullback: %.1f nm",
			bare.Pullback, capped.Pullback))
	}
}

// BenchmarkMEEFCurve sweeps the mask error enhancement factor over pitch.
func BenchmarkMEEFCurve(b *testing.B) {
	f := sharedFlow(b)
	for i := 0; i < b.N; i++ {
		pts, err := opc.MEEFCurve(f.Wafer, 90, []float64{240, 300, 390, 520, 690}, f.Workers())
		if err != nil {
			b.Fatal(err)
		}
		var s string
		for _, p := range pts {
			if p.Pitch == 0 {
				s += fmt.Sprintf("iso:   MEEF %.2f\n", p.MEEF)
			} else {
				s += fmt.Sprintf("p%3.0f:  MEEF %.2f\n", p.Pitch, p.MEEF)
			}
		}
		printFirst("meef", "== MEEF vs pitch (drawn 90) ==\n"+s)
	}
}

// BenchmarkWhitespaceOptimization times the litho-aware placement
// optimizer and reports the WC improvement it finds.
func BenchmarkWhitespaceOptimization(b *testing.B) {
	f := sharedFlow(b)
	var impr float64
	for i := 0; i < b.N; i++ {
		d, err := f.PrepareDesign("c432")
		if err != nil {
			b.Fatal(err)
		}
		res, err := opt.OptimizeWhitespace(f, d, opt.Options{})
		if err != nil {
			b.Fatal(err)
		}
		impr = res.ImprovementPct()
		printFirst("opt", fmt.Sprintf(
			"== whitespace optimization (c432) ==\nWC %.1f ps -> %.1f ps (%.2f%%, %d moves)",
			res.BeforeWC, res.AfterWC, res.ImprovementPct(), res.Moves))
	}
	b.ReportMetric(impr, "%WCgain")
}

// BenchmarkBlockBasedSSTA times the closed-form statistical pass and
// prints its agreement with Monte Carlo.
func BenchmarkBlockBasedSSTA(b *testing.B) {
	f := sharedFlow(b)
	d, err := f.PrepareDesign("c432")
	if err != nil {
		b.Fatal(err)
	}
	mc, err := ssta.MonteCarlo(f, d, ssta.Aware, ssta.Config{Samples: 400, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		can, err := ssta.BlockBased(f, d)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("cssta", fmt.Sprintf(
			"== block-based vs Monte Carlo SSTA (c432) ==\nblock-based: mean %.1f ps, sigma %.2f ps\nmonte carlo: mean %.1f ps, sigma %.2f ps",
			can.Mean, can.Sigma(), mc.Mean, mc.Std))
	}
}

// BenchmarkTransientCharacterization compares Table 2 under the
// closed-form and transient-simulation characterization backends: absolute
// delays shift, the uncertainty-reduction shape must hold.
func BenchmarkTransientCharacterization(b *testing.B) {
	f := sharedFlow(b)
	for i := 0; i < b.N; i++ {
		timing, err := liberty.Characterize(f.Lib, liberty.CharConfig{
			Wafer: f.Wafer, Recipe: f.Recipe, Pitch: f.Pitch, Transient: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		ft := *f
		ft.Timing = timing
		cmp, err := ft.CompareDesign(nil, "c432")
		if err != nil {
			b.Fatal(err)
		}
		base, err := f.CompareDesign(nil, "c432")
		if err != nil {
			b.Fatal(err)
		}
		printFirst("transient", fmt.Sprintf(
			"== characterization backend ablation (c432) ==\nclosed-form: nom %.1f ps, reduction %.1f%%\ntransient:   nom %.1f ps, reduction %.1f%%",
			base.NewNom, base.ReductionPct(), cmp.NewNom, cmp.ReductionPct()))
		if r := cmp.ReductionPct(); r < 20 || r > 50 {
			b.Fatalf("transient-backend reduction %v%% out of band", r)
		}
	}
}

// BenchmarkSequentialSignOff runs the sequential Fmax comparison on the
// ISCAS89-class designs.
func BenchmarkSequentialSignOff(b *testing.B) {
	f := sharedFlow(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		var out string
		for _, name := range []string{"s298", "s1423", "s5378"} {
			sd, err := seq.Generate(f.Lib, seq.ISCAS89Profiles[name])
			if err != nil {
				b.Fatal(err)
			}
			cmp, err := f.CompareSequential(sd)
			if err != nil {
				b.Fatal(err)
			}
			gain = cmp.FmaxGainPct()
			out += fmt.Sprintf("%-6s: trad %7.1f MHz, aware %7.1f MHz (%+.1f%%)\n",
				name, cmp.TradSignOff.FmaxMHz, cmp.NewSignOff.FmaxMHz, cmp.FmaxGainPct())
		}
		printFirst("signoff", "== sequential sign-off (Fmax) ==\n"+out)
	}
	b.ReportMetric(gain, "%Fmaxgain")
}
